package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/parallel"
	"repro/internal/ranking"
	"repro/internal/relation"
)

// Stream is a get-next cursor: an incrementally materialised ranked result
// of one reranking query. Next discovers the best not-yet-produced tuple.
// A Stream is not safe for concurrent use; sessions serialise access.
type Stream struct {
	r      *Reranker
	pred   relation.Predicate
	scorer *ranking.Scorer
	exec   *parallel.Executor

	// stash holds every tuple the stream has observed (query results,
	// crawls, cache seeds), keyed by ID. Stash entries always match pred.
	stash map[int64]relation.Tuple
	// produced are the tuples already returned, in rank order.
	produced    []relation.Tuple
	producedSet map[int64]struct{}
	// lastScore is the score of the most recently produced tuple; by the
	// get-next invariant every matching tuple scoring strictly below it
	// has been produced.
	lastScore float64

	impl nextImpl

	total OpStats
	last  OpStats
}

// nextImpl is the algorithm-specific part of a stream: it discovers the
// best unproduced tuple or reports exhaustion.
type nextImpl interface {
	next(ctx context.Context) (relation.Tuple, bool, error)
}

// Rerank validates a query and opens a get-next stream for it using the
// Reranker's configured algorithm.
func (r *Reranker) Rerank(ctx context.Context, q Query) (*Stream, error) {
	if q.Pred.Unsatisfiable() {
		return nil, fmt.Errorf("core: query predicate is unsatisfiable")
	}
	norm, err := r.Normalization(ctx)
	if err != nil {
		return nil, err
	}
	scorer, err := ranking.Bind(q.Rank, r.db.Schema(), norm)
	if err != nil {
		return nil, err
	}
	st := &Stream{
		r:           r,
		pred:        q.Pred,
		scorer:      scorer,
		exec:        r.newExecutor(),
		stash:       make(map[int64]relation.Tuple),
		producedSet: make(map[int64]struct{}),
		lastScore:   negInf,
	}
	// Seed the stash from the user-level session cache (§II-A): every
	// cached tuple matching the filter is a warm candidate.
	if r.opt.Cache != nil {
		seeds := r.opt.Cache.CachedMatching(q.Pred)
		for _, t := range seeds {
			st.stash[t.ID] = t
		}
		st.total.CacheCandidates += int64(len(seeds))
	}
	algo := r.opt.Algorithm
	if algo == TA && scorer.Dims() > 1 {
		impl, err := newTAEngine(ctx, st)
		if err != nil {
			return nil, err
		}
		st.impl = impl
	} else {
		if algo == TA {
			algo = Rerank // 1D TA degenerates to 1D-Rerank
		}
		impl, err := newEngine(st, algo)
		if err != nil {
			return nil, err
		}
		st.impl = impl
	}
	return st, nil
}

// Scorer returns the stream's bound ranking function (with the discovered
// normalisation), which defines the exact order the stream produces.
func (st *Stream) Scorer() *ranking.Scorer { return st.scorer }

// Pred returns the stream's filter predicate.
func (st *Stream) Pred() relation.Predicate { return st.pred }

// Produced returns the tuples produced so far, in rank order. The slice
// must not be modified.
func (st *Stream) Produced() []relation.Tuple { return st.produced }

// LastStats describes the most recent Next call; TotalStats accumulates
// the stream's whole history (including cache seeding).
func (st *Stream) LastStats() OpStats  { return st.last }
func (st *Stream) TotalStats() OpStats { return st.total }

// Next performs one get-next: it returns the matching tuple with the
// smallest score not yet produced, or ok=false when the result set is
// exhausted.
func (st *Stream) Next(ctx context.Context) (t relation.Tuple, ok bool, err error) {
	// Engine-internal counters (crawls, dense hits, TA sub-stream work)
	// are booked directly into st.last by the impl during next; the
	// executor delta is merged on top afterwards.
	st.last = OpStats{}
	start := time.Now()
	before := st.exec.Stats()
	t, ok, err = st.impl.next(ctx)
	delta := execDelta(before, st.exec.Stats())
	delta.Elapsed = time.Since(start)
	if err == nil && ok {
		delta.Produced = 1
		st.produce(t)
	}
	st.last.add(delta)
	st.total.add(st.last)
	return t, ok, err
}

// produce registers a tuple as returned to the user.
func (st *Stream) produce(t relation.Tuple) {
	st.produced = append(st.produced, t)
	st.producedSet[t.ID] = struct{}{}
	st.lastScore = st.scorer.Score(t)
	if st.r.opt.Cache != nil {
		st.r.opt.Cache.CacheTuples(t)
	}
}

// NextN returns up to n further tuples — one result page of QR2's UI.
func (st *Stream) NextN(ctx context.Context, n int) ([]relation.Tuple, error) {
	var out []relation.Tuple
	for len(out) < n {
		t, ok, err := st.Next(ctx)
		if err != nil {
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, t)
	}
	return out, nil
}

// observe stores query-result tuples into the stash and the session cache.
// Only tuples matching the stream predicate are retained.
func (st *Stream) observe(ts []relation.Tuple) {
	for _, t := range ts {
		if _, ok := st.stash[t.ID]; ok {
			continue
		}
		if !st.pred.Match(t) {
			continue
		}
		st.stash[t.ID] = t
	}
	if st.r.opt.Cache != nil {
		st.r.opt.Cache.CacheTuples(ts...)
	}
}

// bestCandidate scans the stash for the unproduced tuple with the smallest
// (score, ID).
func (st *Stream) bestCandidate() (relation.Tuple, float64, bool) {
	var (
		best  relation.Tuple
		score float64
		found bool
	)
	for id, t := range st.stash {
		if _, done := st.producedSet[id]; done {
			continue
		}
		s := st.scorer.Score(t)
		if !found || s < score || (s == score && t.ID < best.ID) {
			best, score, found = t, s, true
		}
	}
	return best, score, found
}
