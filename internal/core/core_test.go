package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dense"
	"repro/internal/hidden"
	"repro/internal/kvstore"
	"repro/internal/ranking"
	"repro/internal/relation"
)

var allAlgorithms = []Algorithm{Baseline, Binary, Rerank, TA}

func newDB(t testing.TB, cat *datagen.Catalog, k int) *hidden.Local {
	t.Helper()
	db, err := hidden.NewLocal(cat.Name, cat.Rel, k, cat.Rank)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// assertMatchesBruteForce drains up to n tuples from a fresh stream and
// checks them against the brute-force oracle: same length, per-position
// scores equal within tolerance, all results matching and distinct.
func assertMatchesBruteForce(t testing.TB, cat *datagen.Catalog, db *hidden.Local, opt Options, q Query, n int) *Stream {
	t.Helper()
	r, err := New(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	st, err := r.Rerank(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.NextN(ctx, n)
	if err != nil {
		t.Fatalf("%s: NextN: %v", opt.Algorithm, err)
	}
	want := BruteForceTop(cat.Rel, q.Pred, st.Scorer(), n)
	if len(got) != len(want) {
		t.Fatalf("%s: produced %d tuples, oracle has %d", opt.Algorithm, len(got), len(want))
	}
	seen := map[int64]bool{}
	for i := range got {
		if !q.Pred.Match(got[i]) {
			t.Fatalf("%s: position %d: tuple %d does not match the filter", opt.Algorithm, i, got[i].ID)
		}
		if seen[got[i].ID] {
			t.Fatalf("%s: tuple %d produced twice", opt.Algorithm, got[i].ID)
		}
		seen[got[i].ID] = true
		gs, ws := st.Scorer().Score(got[i]), st.Scorer().Score(want[i])
		if math.Abs(gs-ws) > 1e-9 {
			t.Fatalf("%s: position %d: score %.12f (tuple %d), oracle %.12f (tuple %d)",
				opt.Algorithm, i, gs, got[i].ID, ws, want[i].ID)
		}
	}
	return st
}

func Test1DGetNextMatchesBruteForce(t *testing.T) {
	cat := datagen.Uniform(600, 2, 1)
	for _, algo := range allAlgorithms {
		for _, rank := range []ranking.Function{ranking.Ascending("a0"), ranking.Descending("a0")} {
			t.Run(string(algo)+"/"+rank.String(), func(t *testing.T) {
				db := newDB(t, cat, 25)
				assertMatchesBruteForce(t, cat, db, Options{Algorithm: algo}, Query{Rank: rank}, 15)
			})
		}
	}
}

func TestMDGetNextMatchesBruteForce(t *testing.T) {
	cat := datagen.Uniform(500, 3, 2)
	ranks := []string{
		"a0 + a1",
		"a0 - 0.5*a1",
		"-a0 - a1",
		"0.3*a0 + 0.7*a1 - 0.2*a2",
	}
	for _, algo := range allAlgorithms {
		for _, expr := range ranks {
			t.Run(string(algo)+"/"+expr, func(t *testing.T) {
				db := newDB(t, cat, 25)
				q := Query{Rank: ranking.MustParse(expr)}
				assertMatchesBruteForce(t, cat, db, Options{Algorithm: algo}, q, 10)
			})
		}
	}
}

func TestGetNextWithFilters(t *testing.T) {
	cat := datagen.BlueNile(1500, 3)
	s := cat.Rel.Schema()
	pred, err := relation.NewBuilder(s).
		Range("price", 500, 20000).
		In("shape", "Round", "Oval").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range allAlgorithms {
		t.Run(string(algo), func(t *testing.T) {
			db := newDB(t, cat, 30)
			q := Query{Pred: pred, Rank: ranking.MustParse("price - 0.1*carat - 0.5*depth")}
			assertMatchesBruteForce(t, cat, db, Options{Algorithm: algo}, q, 10)
		})
	}
}

func TestGetNextTieGroups(t *testing.T) {
	// Ranking ascending on the tied attribute forces tie-group crawling:
	// far more than system-k tuples share the minimal interesting value.
	cat := datagen.TieHeavy(1200, 0.3, 4)
	pred := relation.Predicate{}.WithInterval(0, relation.Closed(400, 600))
	for _, algo := range allAlgorithms {
		t.Run(string(algo), func(t *testing.T) {
			db := newDB(t, cat, 20)
			q := Query{Pred: pred, Rank: ranking.Ascending("tied")}
			assertMatchesBruteForce(t, cat, db, Options{Algorithm: algo}, q, 25)
		})
	}
}

func TestDrainProducesEverythingExactlyOnce(t *testing.T) {
	cat := datagen.Uniform(300, 2, 5)
	pred := relation.Predicate{}.WithInterval(0, relation.Closed(100, 700))
	matches := cat.Rel.Select(pred)
	for _, algo := range allAlgorithms {
		t.Run(string(algo), func(t *testing.T) {
			db := newDB(t, cat, 15)
			r, err := New(db, Options{Algorithm: algo})
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			st, err := r.Rerank(ctx, Query{Pred: pred, Rank: ranking.MustParse("a0 - a1")})
			if err != nil {
				t.Fatal(err)
			}
			got, err := st.NextN(ctx, len(matches)+50)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(matches) {
				t.Fatalf("drained %d tuples, %d match", len(got), len(matches))
			}
			ids := map[int64]bool{}
			prev := math.Inf(-1)
			for _, tu := range got {
				if ids[tu.ID] {
					t.Fatalf("tuple %d produced twice", tu.ID)
				}
				ids[tu.ID] = true
				s := st.Scorer().Score(tu)
				if s < prev-1e-9 {
					t.Fatalf("scores not non-decreasing: %v after %v", s, prev)
				}
				prev = s
			}
			// Exhausted stream stays exhausted.
			if _, ok, err := st.Next(ctx); ok || err != nil {
				t.Fatalf("exhausted stream returned ok=%v err=%v", ok, err)
			}
		})
	}
}

// The heavyweight randomized cross-check: random catalogs, filters and
// ranking functions; every algorithm must agree with the oracle.
func TestGetNextRandomizedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	attrNames := []string{"a0", "a1", "a2"}
	for trial := 0; trial < 12; trial++ {
		cat := datagen.Uniform(200+r.Intn(400), 3, int64(100+trial))
		k := 10 + r.Intn(25)
		pred := relation.Predicate{}
		if r.Intn(2) == 0 {
			lo := r.Float64() * 600
			pred = pred.WithInterval(r.Intn(3), relation.Closed(lo, lo+200+r.Float64()*300))
		}
		dims := 1 + r.Intn(3)
		var fn ranking.Function
		perm := r.Perm(3)
		for d := 0; d < dims; d++ {
			w := (r.Float64()*2 - 1)
			if math.Abs(w) < 0.05 {
				w = 0.3
			}
			fn.Terms = append(fn.Terms, ranking.Term{Attr: attrNames[perm[d]], Weight: w})
		}
		for _, algo := range allAlgorithms {
			db := newDB(t, cat, k)
			assertMatchesBruteForce(t, cat, db, Options{Algorithm: algo},
				Query{Pred: pred, Rank: fn}, 8)
		}
	}
}

// denseFixture builds a catalog with a dense wall exactly where the ranked
// order begins: 2000 tuples with a0 packed into [500, 502] and 500
// background tuples with a0 in [600, 1000]. Ranking ascending on a0 makes
// every narrow region at the wall overflow — the paper's dense-region case.
func denseFixture(t *testing.T) *datagen.Catalog {
	t.Helper()
	schema := relation.MustSchema(
		relation.Attribute{Name: "a0", Kind: relation.Numeric, Min: 0, Max: 1000, Resolution: 0.01},
		relation.Attribute{Name: "a1", Kind: relation.Numeric, Min: 0, Max: 1000, Resolution: 0.01},
	)
	rel := relation.NewRelation("densefix", schema)
	rnd := rand.New(rand.NewSource(77))
	id := int64(1)
	add := func(x, y float64) {
		rel.MustAppend(relation.Tuple{ID: id, Values: []float64{
			math.Round(x*100) / 100, math.Round(y*100) / 100}})
		id++
	}
	for i := 0; i < 2000; i++ {
		add(500+rnd.Float64()*2, rnd.Float64()*1000)
	}
	for i := 0; i < 500; i++ {
		add(600+rnd.Float64()*400, rnd.Float64()*1000)
	}
	rank := func(tu relation.Tuple) float64 { return float64(tu.ID % 977) }
	return &datagen.Catalog{Rel: rel, Rank: rank, Name: "densefix"}
}

func TestRerankAmortizesViaDenseIndex(t *testing.T) {
	// The ranked order starts inside the dense wall; after warming the
	// shared index on one stream, an identical stream must cost fewer
	// queries and register dense hits.
	cat := denseFixture(t)
	db := newDB(t, cat, 20)
	ix, err := dense.Open(cat.Rel.Schema(), kvstore.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Algorithm: Rerank, DenseDepth: 9, DenseIndex: ix}
	r, err := New(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := Query{Rank: ranking.Ascending("a0")}

	st1, err := r.Rerank(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st1.NextN(ctx, 10); err != nil {
		t.Fatal(err)
	}
	cold := st1.TotalStats()

	st2, err := r.Rerank(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st2.NextN(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	warm := st2.TotalStats()

	if cold.DenseCrawls == 0 {
		t.Fatalf("expected dense crawls on a clustered catalog, stats %+v", cold)
	}
	if warm.DenseHits == 0 {
		t.Fatal("second stream did not hit the dense index")
	}
	if warm.Queries >= cold.Queries {
		t.Fatalf("no amortisation: cold %d queries, warm %d", cold.Queries, warm.Queries)
	}
	// Warm results still correct.
	want := BruteForceTop(cat.Rel, q.Pred, st2.Scorer(), 10)
	for i := range got {
		if math.Abs(st2.Scorer().Score(got[i])-st2.Scorer().Score(want[i])) > 1e-9 {
			t.Fatalf("warm result %d wrong", i)
		}
	}
}

func TestSessionCacheSeedsCandidates(t *testing.T) {
	cat := datagen.Uniform(800, 2, 7)
	q := Query{Rank: ranking.MustParse("a0 + 0.5*a1")}

	run := func(cache TupleCache) OpStats {
		db := newDB(t, cat, 20)
		r, err := New(db, Options{Algorithm: Baseline, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.Rerank(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.NextN(context.Background(), 5); err != nil {
			t.Fatal(err)
		}
		return st.TotalStats()
	}

	cold := run(nil)
	warm := &fakeCache{}
	// Warm the cache with a previous identical query.
	{
		db := newDB(t, cat, 20)
		r, _ := New(db, Options{Algorithm: Baseline, Cache: warm})
		st, err := r.Rerank(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.NextN(context.Background(), 5); err != nil {
			t.Fatal(err)
		}
	}
	warmStats := run(warm)
	if warmStats.CacheCandidates == 0 {
		t.Fatal("cache seeded no candidates")
	}
	if warmStats.Queries > cold.Queries {
		t.Fatalf("warm cache increased cost: %d vs %d", warmStats.Queries, cold.Queries)
	}
}

type fakeCache struct {
	tuples map[int64]relation.Tuple
}

func (c *fakeCache) CacheTuples(ts ...relation.Tuple) {
	if c.tuples == nil {
		c.tuples = map[int64]relation.Tuple{}
	}
	for _, t := range ts {
		c.tuples[t.ID] = t
	}
}

func (c *fakeCache) CachedMatching(p relation.Predicate) []relation.Tuple {
	var out []relation.Tuple
	for _, t := range c.tuples {
		if p.Match(t) {
			out = append(out, t)
		}
	}
	return out
}

func TestBudgetExceeded(t *testing.T) {
	cat := datagen.Uniform(3000, 2, 8)
	db := newDB(t, cat, 10)
	r, err := New(db, Options{Algorithm: Binary, MaxQueriesPerNext: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Use a fixed normalisation so discovery does not consume queries.
	norm := ranking.FromSchema(cat.Rel.Schema())
	r.norm = &norm
	st, err := r.Rerank(context.Background(), Query{Rank: ranking.Descending("a0")})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = st.Next(context.Background())
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestNormalizationDiscoverySound(t *testing.T) {
	cat := datagen.Zillow(2000, 9)
	db := newDB(t, cat, 40)
	r, err := New(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	norm, err := r.Normalization(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.NormalizationQueries() == 0 {
		t.Fatal("discovery issued no queries")
	}
	s := cat.Rel.Schema()
	for i := 0; i < s.Len(); i++ {
		a := s.Attr(i)
		if a.Kind != relation.Numeric {
			continue
		}
		trueLo, trueHi, _ := cat.Rel.MinMax(i)
		if norm.Min[i] > trueLo {
			t.Errorf("%s: discovered min %v above true min %v (unsound)", a.Name, norm.Min[i], trueLo)
		}
		if norm.Max[i] < trueHi {
			t.Errorf("%s: discovered max %v below true max %v (unsound)", a.Name, norm.Max[i], trueHi)
		}
		slack := a.Resolution
		if slack <= 0 {
			slack = (a.Max - a.Min) * 1e-6
		}
		if trueLo-norm.Min[i] > slack*2 {
			t.Errorf("%s: min loose by %v", a.Name, trueLo-norm.Min[i])
		}
		if norm.Max[i]-trueHi > slack*2 {
			t.Errorf("%s: max loose by %v", a.Name, norm.Max[i]-trueHi)
		}
	}
	// Second call is cached.
	before := r.NormalizationQueries()
	if _, err := r.Normalization(context.Background()); err != nil {
		t.Fatal(err)
	}
	if r.NormalizationQueries() != before {
		t.Fatal("normalisation recomputed")
	}
}

func TestSequentialOnlyMatchesParallel(t *testing.T) {
	cat := datagen.Uniform(400, 2, 10)
	q := Query{Rank: ranking.MustParse("a0 - a1")}
	db1 := newDB(t, cat, 20)
	st1 := assertMatchesBruteForce(t, cat, db1, Options{Algorithm: Rerank}, q, 10)
	db2 := newDB(t, cat, 20)
	st2 := assertMatchesBruteForce(t, cat, db2, Options{Algorithm: Rerank, SequentialOnly: true}, q, 10)
	if st2.TotalStats().ParallelBatches != 0 {
		t.Fatal("sequential-only executor ran parallel batches")
	}
	if st1.TotalStats().Queries == 0 || st2.TotalStats().Queries == 0 {
		t.Fatal("no queries recorded")
	}
}

func TestStatsConsistency(t *testing.T) {
	cat := datagen.Uniform(500, 2, 11)
	db := newDB(t, cat, 20)
	st := assertMatchesBruteForce(t, cat, db, Options{Algorithm: Rerank}, Query{Rank: ranking.MustParse("a0 + a1")}, 10)
	s := st.TotalStats()
	var sum int64
	for _, b := range s.BatchSizes {
		sum += int64(b)
	}
	if sum != s.Queries {
		t.Fatalf("batch sizes sum %d != queries %d", sum, s.Queries)
	}
	if f := s.ParallelQueryFraction(); f < 0 || f > 1 {
		t.Fatalf("parallel fraction %v", f)
	}
	if s.Produced != 10 {
		t.Fatalf("Produced = %d", s.Produced)
	}
}

func TestRerankErrors(t *testing.T) {
	cat := datagen.Uniform(100, 2, 12)
	db := newDB(t, cat, 10)
	if _, err := New(db, Options{Algorithm: Algorithm("nope")}); err == nil {
		t.Fatal("bad algorithm accepted")
	}
	r, err := New(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	bad := relation.Predicate{}.WithInterval(0, relation.Closed(5, 1))
	if _, err := r.Rerank(ctx, Query{Pred: bad, Rank: ranking.Ascending("a0")}); err == nil {
		t.Fatal("unsatisfiable predicate accepted")
	}
	if _, err := r.Rerank(ctx, Query{Rank: ranking.Ascending("nope")}); err == nil {
		t.Fatal("unknown ranking attribute accepted")
	}
	if _, err := r.Rerank(ctx, Query{Rank: ranking.Function{}}); err == nil {
		t.Fatal("empty ranking function accepted")
	}
}

func TestEmptyResult(t *testing.T) {
	cat := datagen.Uniform(100, 2, 13)
	pred := relation.Predicate{}.WithInterval(0, relation.Closed(2000, 3000)) // outside domain
	for _, algo := range allAlgorithms {
		db := newDB(t, cat, 10)
		r, err := New(db, Options{Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.Rerank(context.Background(), Query{Pred: pred, Rank: ranking.Ascending("a0")})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, err := st.Next(context.Background()); ok || err != nil {
			t.Fatalf("%s: empty result: ok=%v err=%v", algo, ok, err)
		}
	}
}

func TestTADegeneratesTo1D(t *testing.T) {
	cat := datagen.Uniform(300, 2, 14)
	db := newDB(t, cat, 15)
	assertMatchesBruteForce(t, cat, db, Options{Algorithm: TA},
		Query{Rank: ranking.Ascending("a1")}, 10)
}

func TestContextCancellation(t *testing.T) {
	cat := datagen.Uniform(2000, 2, 15)
	db := newDB(t, cat, 10)
	r, err := New(db, Options{Algorithm: Binary})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Rerank(ctx, Query{Rank: ranking.Ascending("a0")}); err == nil {
		t.Fatal("cancelled context accepted (normalisation discovery should fail)")
	}
}
