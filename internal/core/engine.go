package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/crawl"
	"repro/internal/obs"
	"repro/internal/region"
	"repro/internal/relation"
)

// leafState tracks a region's lifecycle in the worklist.
type leafState uint8

const (
	// leafUnexplored regions have not been resolved yet.
	leafUnexplored leafState = iota
	// leafEnumerated regions are complete: every pred-matching tuple
	// inside them is known (query underflow, dense-index hit, or crawl).
	leafEnumerated
)

// leaf is one region of the worklist, in normalised ranking coordinates.
type leaf struct {
	rect  region.Rect
	state leafState
	depth int
	// linMin caches rect.LinearMin(weights) for the current prune pass; it
	// is refreshed by pruneAndFrontier and reused by the dormant sort.
	linMin float64
}

// engine is the shared region-worklist machine behind (1D/MD)-BASELINE,
// -BINARY and -RERANK. The three strategies differ only in how an
// overflowing region is refined:
//
//   - Baseline clips the region against the rank contour of the best-known
//     candidate and re-queries it, splitting only when clipping stalls; its
//     worklist is rebuilt from the whole domain on every get-next.
//   - Binary halves the region along its (relatively) widest dimension; the
//     worklist persists across get-nexts, so previously enumerated regions
//     are never re-queried.
//   - Rerank behaves like Binary until a region narrower than the dense
//     threshold still overflows; then the region is crawled completely,
//     inserted into the shared dense index, and answered locally — as are
//     all future regions the index covers.
//
// Every strategy falls back to a crawl when a region is unsplittable (a
// point region still overflowing means more than system-k tuples share the
// value — the paper's general-positioning fix).
type engine struct {
	st   *Stream
	algo Algorithm

	attrs     []int     // schema positions of the ranking attributes
	weights   []float64 // aligned with attrs
	domain    region.Rect
	refWidths []float64 // domain widths, for relative width measures
	minSplit  []float64 // minimal splittable width per dimension

	leaves      []*leaf
	initialized bool
	empty       bool
}

func newEngine(st *Stream, algo Algorithm) (*engine, error) {
	sc := st.scorer
	norm := sc.Norm()
	schema := st.r.db.Schema()
	e := &engine{st: st, algo: algo, attrs: sc.Attrs(), weights: sc.Weights()}
	ivs := make([]relation.Interval, len(e.attrs))
	e.refWidths = make([]float64, len(e.attrs))
	e.minSplit = make([]float64, len(e.attrs))
	for i, a := range e.attrs {
		filter := st.pred.Interval(a)
		nIv := relation.Interval{
			Lo: norm.Normalize(a, filter.Lo), LoOpen: filter.LoOpen,
			Hi: norm.Normalize(a, filter.Hi), HiOpen: filter.HiOpen,
		}
		ivs[i] = relation.Closed(0, 1).Intersect(nIv)
		if ivs[i].Empty() {
			e.empty = true
		}
		e.refWidths[i] = ivs[i].Width()
		span := norm.Max[a] - norm.Min[a]
		res := schema.Attr(a).Resolution
		switch {
		case span <= 0:
			e.minSplit[i] = math.Inf(1) // degenerate attribute: never split
		case res > 0:
			e.minSplit[i] = math.Max(res/span, 1e-12)
		default:
			e.minSplit[i] = 1e-9
		}
	}
	rect, err := region.New(e.attrs, ivs)
	if err != nil {
		return nil, err
	}
	e.domain = rect
	return e, nil
}

// rawRect converts a normalised rect into raw attribute coordinates.
func (e *engine) rawRect(nr region.Rect) region.Rect {
	norm := e.st.scorer.Norm()
	out := nr.Clone()
	for i, a := range out.Attrs {
		out.Ivs[i].Lo = norm.Denormalize(a, out.Ivs[i].Lo)
		out.Ivs[i].Hi = norm.Denormalize(a, out.Ivs[i].Hi)
	}
	return out
}

// queryPredicate is the web-database query for a region: the user filter
// plus the region's raw bounds.
func (e *engine) queryPredicate(nr region.Rect) relation.Predicate {
	return e.rawRect(nr).Predicate(e.st.pred)
}

// next implements nextImpl.
func (e *engine) next(ctx context.Context) (relation.Tuple, bool, error) {
	if e.empty {
		return relation.Tuple{}, false, nil
	}
	if !e.initialized || e.algo == Baseline {
		// Baseline is stateless per get-next: broad queries over the whole
		// remaining space every time. Binary/Rerank keep their worklist.
		e.leaves = []*leaf{{rect: e.domain.Clone()}}
		e.initialized = true
	}
	budget := e.st.r.opt.MaxQueriesPerNext
	startQueries := e.st.exec.Stats().Queries
	used := func() int { return int(e.st.exec.Stats().Queries - startQueries) }

	specBudget := e.st.r.opt.MaxParallel
	for iter := 0; iter < 1<<20; iter++ {
		if err := ctx.Err(); err != nil {
			return relation.Tuple{}, false, err
		}
		cand, candScore, haveCand := e.st.bestCandidate()

		// Prune dead regions and assemble the frontier: the set of
		// unexplored regions that could still contain a tuple beating the
		// candidate. Querying all of them at once is the paper's parallel
		// verification: together they cover every area in which a tuple
		// may dominate the best-known one.
		frontier, dormant := e.pruneAndFrontier(candScore, haveCand)
		if len(frontier) == 0 {
			if haveCand {
				return cand, true, nil
			}
			return relation.Tuple{}, false, nil
		}
		// Speculative parallelism (§II-B): while the round trip for the
		// mandatory frontier is in flight anyway, fill the batch with the
		// dormant regions closest to the contour — they are the ones the
		// next get-next will most likely need. This can issue queries a
		// sequential run would avoid (the paper's stated trade-off) but
		// converts their latency from future round trips into the
		// current one. Bounded per get-next so speculation cannot run
		// away.
		if e.st.exec.Parallel() && specBudget > 0 && len(dormant) > 0 {
			take := e.st.r.opt.MaxParallel - len(frontier)
			if take > specBudget {
				take = specBudget
			}
			if take > 0 {
				sortLeavesByLinearMin(dormant)
				if take > len(dormant) {
					take = len(dormant)
				}
				frontier = append(frontier, dormant[:take]...)
				specBudget -= take
			}
		}

		// Dense-index lookups resolve regions for free (Rerank only).
		toQuery := frontier
		if e.algo == Rerank {
			toQuery = toQuery[:0:0]
			for _, lf := range frontier {
				hit, err := e.tryDenseIndex(ctx, lf)
				if err != nil {
					return relation.Tuple{}, false, err
				}
				if !hit {
					toQuery = append(toQuery, lf)
				}
			}
			if len(toQuery) == 0 {
				continue
			}
		}

		// Baseline tightens each region against the candidate's rank
		// contour before spending a query on it.
		if e.algo == Baseline && haveCand {
			kept := toQuery[:0]
			for _, lf := range toQuery {
				lf.rect = clipBelowContour(lf.rect, e.weights, candScore)
				if lf.rect.Empty() {
					lf.state = leafEnumerated
					continue
				}
				kept = append(kept, lf)
			}
			toQuery = kept
			if len(toQuery) == 0 {
				continue
			}
		}

		if used()+len(toQuery) > budget {
			return relation.Tuple{}, false, fmt.Errorf("%w (budget %d)", ErrBudget, budget)
		}
		preds := make([]relation.Predicate, len(toQuery))
		for i, lf := range toQuery {
			preds[i] = e.queryPredicate(lf.rect)
		}
		results, err := e.st.exec.SearchBatch(ctx, preds)
		if err != nil {
			return relation.Tuple{}, false, err
		}
		for i, res := range results {
			lf := toQuery[i]
			e.st.observe(res.Tuples)
			if !res.Overflow {
				lf.state = leafEnumerated
				continue
			}
			if err := e.refine(ctx, lf, budget-used()); err != nil {
				return relation.Tuple{}, false, err
			}
		}
	}
	return relation.Tuple{}, false, fmt.Errorf("core: engine failed to converge")
}

// pruneAndFrontier drops dead leaves and splits the unexplored leaves into
// the frontier (must be queried now) and the dormant rest. A leaf is dead
// when every tuple in it scores strictly below the last produced score —
// by the get-next invariant all such tuples have been produced. A leaf is
// dormant when no tuple in it can beat the current candidate.
func (e *engine) pruneAndFrontier(candScore float64, haveCand bool) (frontier, dormant []*leaf) {
	live := e.leaves[:0]
	for _, lf := range e.leaves {
		if lf.state == leafEnumerated {
			// Fully known; its tuples live in the stash. Dropping the
			// leaf keeps the worklist small.
			continue
		}
		if lf.rect.LinearMax(e.weights) < e.st.lastScore {
			continue // dead: everything in it was already produced
		}
		live = append(live, lf)
		// One LinearMin evaluation per leaf per pass: the frontier test and
		// the dormant speculation sort both reuse it.
		lf.linMin = lf.rect.LinearMin(e.weights)
		if !haveCand || lf.linMin < candScore {
			frontier = append(frontier, lf)
		} else {
			dormant = append(dormant, lf)
		}
	}
	e.leaves = live
	return frontier, dormant
}

// sortLeavesByLinearMin orders leaves by ascending best-corner score, using
// the linMin values precomputed by the prune pass.
func sortLeavesByLinearMin(ls []*leaf) {
	sort.Slice(ls, func(a, b int) bool { return ls[a].linMin < ls[b].linMin })
}

// tryDenseIndex resolves a leaf from the dense-region index when an indexed
// region covers it. Reports whether the leaf was resolved. Single-attribute
// rankings — every 1D stream, including the per-attribute sorted-access
// substreams of MD-TA — go through the index's cached per-attribute
// ordering instead of an ad-hoc sort.
func (e *engine) tryDenseIndex(ctx context.Context, lf *leaf) (bool, error) {
	// The dense index itself is context-free; the span is opened here,
	// the nearest layer that still holds the request context.
	tm := obs.FromContext(ctx).Start(obs.StageDenseTopIn)
	rr := e.rawRect(lf.rect)
	entry, ok := e.st.r.ix.Find(rr)
	if !ok {
		tm.End(obs.OutcomeMiss)
		return false, nil
	}
	if len(e.attrs) == 1 {
		tuples, err := e.st.r.ix.TopInByAttr(entry.ID, rr, e.st.pred, e.attrs[0], e.weights[0] < 0, nil, 0)
		if err != nil {
			tm.End(obs.OutcomeError)
			return false, err
		}
		e.st.observe(tuples)
	} else {
		// MD leaves can cover most of an entry; stream the shared resident
		// view in bounded chunks instead of materialising an O(entry)
		// output copy per resolution.
		chunk := make([]relation.Tuple, 0, 256)
		err := e.st.r.ix.ScanIn(entry.ID, rr, e.st.pred, nil, func(t relation.Tuple) bool {
			chunk = append(chunk, t)
			if len(chunk) == cap(chunk) {
				e.st.observe(chunk)
				chunk = chunk[:0]
			}
			return true
		})
		if err != nil {
			tm.End(obs.OutcomeError)
			return false, err
		}
		e.st.observe(chunk)
	}
	tm.End(obs.OutcomeHit)
	lf.state = leafEnumerated
	e.st.last.DenseHits++
	return true, nil
}

// refine handles an overflowing leaf according to the strategy.
func (e *engine) refine(ctx context.Context, lf *leaf, remaining int) error {
	if e.algo == Baseline {
		// The batch may have produced a better candidate; try clipping
		// first — the classic baseline narrowing step.
		if _, cs, ok := e.st.bestCandidate(); ok {
			clipped := clipBelowContour(lf.rect, e.weights, cs)
			if clipped.Empty() {
				lf.state = leafEnumerated
				return nil
			}
			if rectNarrower(clipped, lf.rect) {
				lf.rect = clipped
				return nil // re-query the narrowed region next iteration
			}
		}
	}
	dim := e.splittableDim(lf.rect)
	dense := dim < 0 // unsplittable: forced crawl for every strategy
	if !dense && e.algo == Rerank && lf.depth >= e.st.r.opt.DenseDepth {
		// The region kept more than system-k tuples through DenseDepth
		// halvings — evidence it is genuinely dense, so materialise it
		// once instead of splitting further. Depth-based detection is
		// robust to skewed domains, where any fixed width fraction either
		// never fires or fires on huge swaths of the space.
		dense = true
	}
	if dense {
		return e.crawlLeaf(ctx, lf, remaining)
	}
	mid := lf.rect.Ivs[dim].Midpoint()
	left, right := lf.rect.SplitAt(dim, mid)
	lf.rect, lf.depth = left, lf.depth+1
	e.leaves = append(e.leaves, &leaf{rect: right, depth: lf.depth})
	return nil
}

// splittableDim picks the relatively widest dimension that can still be
// halved, or -1.
func (e *engine) splittableDim(r region.Rect) int {
	best, bestW := -1, 0.0
	for i, iv := range r.Ivs {
		w := iv.Width()
		if w <= e.minSplit[i] {
			continue
		}
		rel := w
		if e.refWidths[i] > 0 {
			rel = w / e.refWidths[i]
		}
		if rel > bestW {
			best, bestW = i, rel
		}
	}
	return best
}

// crawlLeaf materialises a leaf completely. Rerank crawls without the user
// filter so the result is reusable, and publishes it to the shared dense
// index; the other strategies crawl the filtered region only.
func (e *engine) crawlLeaf(ctx context.Context, lf *leaf, remaining int) error {
	if remaining <= 0 {
		return fmt.Errorf("%w (crawl)", ErrBudget)
	}
	reusable := e.algo == Rerank
	var pred relation.Predicate
	rr := e.rawRect(lf.rect)
	if reusable {
		pred = rr.Predicate(relation.Predicate{})
	} else {
		pred = rr.Predicate(e.st.pred)
	}
	tuples, cstats, err := crawl.All(ctx, e.st.exec, pred, crawl.Options{MaxQueries: remaining})
	if errors.Is(err, crawl.ErrDegraded) {
		// The source died mid-crawl and the resilience layer is serving
		// degraded: keep what the crawl really saw (observation only —
		// Complete is false, so nothing is admitted to the dense index or
		// any cache) and let the request finish best-effort instead of
		// failing. The response carries the degraded marker.
		e.st.last.DenseCrawls++
		e.st.last.CrawledTuples += int64(len(tuples))
		all := make([]relation.Tuple, 0, len(tuples))
		for _, t := range tuples {
			all = append(all, t)
		}
		e.st.observe(all)
		lf.state = leafEnumerated
		return nil
	}
	if err != nil {
		return err
	}
	e.st.last.DenseCrawls++
	e.st.last.CrawledTuples += int64(len(tuples))
	e.st.last.Saturated += int64(cstats.Saturated)
	all := make([]relation.Tuple, 0, len(tuples))
	for _, t := range tuples {
		all = append(all, t)
	}
	if reusable && cstats.Complete {
		if _, err := e.st.r.ix.Insert(rr, all); err != nil {
			return err
		}
	}
	e.st.observe(all)
	lf.state = leafEnumerated
	return nil
}

// clipBelowContour returns a rectangle covering {x ∈ r : f(x) < s} for the
// linear function f(x) = Σ w[i]·x[i]: along each dimension i the bound
// (s - min over r of Σ_{j≠i} w[j]x[j]) / w[i] caps the coordinate. The
// result is a superset of the sub-level set (sound for pruning) and never
// larger than r.
func clipBelowContour(r region.Rect, w []float64, s float64) region.Rect {
	total := r.LinearMin(w)
	out := r.Clone()
	for i, iv := range out.Ivs {
		var cornerTerm float64
		if w[i] >= 0 {
			cornerTerm = w[i] * iv.Lo
		} else {
			cornerTerm = w[i] * iv.Hi
		}
		others := total - cornerTerm
		bound := (s - others) / w[i]
		if w[i] > 0 {
			if bound < iv.Hi || (bound == iv.Hi && !iv.HiOpen) {
				out.Ivs[i].Hi, out.Ivs[i].HiOpen = bound, true
			}
		} else {
			if bound > iv.Lo || (bound == iv.Lo && !iv.LoOpen) {
				out.Ivs[i].Lo, out.Ivs[i].LoOpen = bound, true
			}
		}
	}
	return out
}

// rectNarrower reports whether a is strictly narrower than b on some
// dimension (same attrs assumed).
func rectNarrower(a, b region.Rect) bool {
	for i := range a.Ivs {
		ai, bi := a.Ivs[i], b.Ivs[i]
		if ai.Lo != bi.Lo || ai.Hi != bi.Hi || ai.LoOpen != bi.LoOpen || ai.HiOpen != bi.HiOpen {
			return true
		}
	}
	return false
}
