package core

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/datagen"
	"repro/internal/dense"
	"repro/internal/hidden"
	"repro/internal/kvstore"
	"repro/internal/qcache"
	"repro/internal/ranking"
	"repro/internal/region"
	"repro/internal/relation"
)

// Concurrent streams over one Reranker share the dense index and the
// normalisation; every stream must still be exact.
func TestConcurrentStreamsShareIndex(t *testing.T) {
	cat := denseFixture(t)
	db := newDB(t, cat, 20)
	ix, err := dense.Open(cat.Rel.Schema(), kvstore.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(db, Options{Algorithm: Rerank, DenseDepth: 9, DenseIndex: ix})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := Query{Rank: ranking.Ascending("a0")}
			if g%2 == 1 {
				q.Rank = ranking.MustParse("a0 + 0.1*a1")
			}
			st, err := r.Rerank(ctx, q)
			if err != nil {
				errs <- err
				return
			}
			got, err := st.NextN(ctx, 8)
			if err != nil {
				errs <- err
				return
			}
			want := BruteForceTop(cat.Rel, relation.Predicate{}, st.Scorer(), 8)
			for i := range got {
				if math.Abs(st.Scorer().Score(got[i])-st.Scorer().Score(want[i])) > 1e-9 {
					t.Errorf("goroutine %d: position %d wrong", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// A mid-stream database failure must surface as an error without corrupting
// the stream: a subsequent Next against a healed database succeeds and the
// overall output remains exact.
func TestStreamSurvivesTransientFailure(t *testing.T) {
	cat := datagen.Uniform(800, 2, 21)
	inner := mustLocalDB(t, cat, 15)
	// Sequential execution keeps batches to one query, so a 1-in-4
	// failure rate still leaves room to make progress between injections.
	flaky := &hidden.Flaky{Inner: inner, FailEvery: 4}
	r, err := New(flaky, Options{Algorithm: Binary, SequentialOnly: true, Normalization: normOf(cat)})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	st, err := r.Rerank(ctx, Query{Rank: ranking.Descending("a0")})
	if err != nil {
		t.Fatal(err)
	}
	var got []relation.Tuple
	failures := 0
	for len(got) < 10 {
		tu, ok, err := st.Next(ctx)
		if err != nil {
			failures++
			if failures > 100 {
				t.Fatal("stream never recovers")
			}
			continue // retry: the injected failure is transient
		}
		if !ok {
			t.Fatal("stream exhausted prematurely")
		}
		got = append(got, tu)
	}
	if failures == 0 {
		t.Fatal("fault injection never fired; test fixture broken")
	}
	want := BruteForceTop(cat.Rel, relation.Predicate{}, st.Scorer(), 10)
	for i := range got {
		gs, ws := st.Scorer().Score(got[i]), st.Scorer().Score(want[i])
		if math.Abs(gs-ws) > 1e-9 {
			t.Fatalf("position %d: score %v, oracle %v", i, gs, ws)
		}
	}
}

// MaxParallel 1 degenerates parallel batches to sequential execution but
// must stay correct.
func TestMaxParallelOne(t *testing.T) {
	cat := datagen.Uniform(400, 2, 22)
	db := newDB(t, cat, 20)
	assertMatchesBruteForce(t, cat, db, Options{Algorithm: Rerank, MaxParallel: 1},
		Query{Rank: ranking.MustParse("a0 + a1")}, 10)
}

// Property (testing/quick): clipBelowContour is a sound cover — every point
// of the rectangle scoring below s stays inside the clipped rectangle, and
// the clip never grows the rectangle.
func TestClipBelowContourSoundProperty(t *testing.T) {
	type input struct {
		Lo0, W0, Lo1, W1 float64
		W                [2]float64
		SFrac, P0, P1    float64
	}
	f := func(in input) bool {
		lo0 := math.Mod(math.Abs(in.Lo0), 100)
		w0 := math.Mod(math.Abs(in.W0), 100) + 0.1
		lo1 := math.Mod(math.Abs(in.Lo1), 100)
		w1 := math.Mod(math.Abs(in.W1), 100) + 0.1
		weights := []float64{sanitizeWeight(in.W[0]), sanitizeWeight(in.W[1])}
		r := region.MustNew([]int{0, 1}, []relation.Interval{
			relation.Closed(lo0, lo0+w0), relation.Closed(lo1, lo1+w1)})
		lo, hi := r.LinearMin(weights), r.LinearMax(weights)
		s := lo + math.Mod(math.Abs(in.SFrac), 1)*(hi-lo)
		clipped := clipBelowContour(r, weights, s)
		// Never grows.
		if !r.Covers(clipped) {
			return false
		}
		// Sound: any in-rect point with f < s is inside the clip.
		p0 := lo0 + math.Mod(math.Abs(in.P0), 1)*w0
		p1 := lo1 + math.Mod(math.Abs(in.P1), 1)*w1
		score := weights[0]*p0 + weights[1]*p1
		tu := relation.Tuple{Values: []float64{p0, p1}}
		if score < s && !clipped.ContainsTuple(tu) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Error(err)
	}
}

func sanitizeWeight(w float64) float64 {
	w = math.Mod(w, 4)
	if math.Abs(w) < 0.1 || math.IsNaN(w) {
		return 0.5
	}
	return w
}

// A stream created before index warm-up and one created after must agree.
func TestWarmAndColdStreamsAgree(t *testing.T) {
	cat := denseFixture(t)
	ix, err := dense.Open(cat.Rel.Schema(), kvstore.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Rank: ranking.Ascending("a0")}
	run := func() []relation.Tuple {
		db := newDB(t, cat, 20)
		r, err := New(db, Options{Algorithm: Rerank, DenseDepth: 9, DenseIndex: ix})
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.Rerank(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		out, err := st.NextN(context.Background(), 20)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	cold := run()
	warm := run()
	if len(cold) != len(warm) {
		t.Fatalf("lengths differ: %d vs %d", len(cold), len(warm))
	}
	for i := range cold {
		if cold[i].ID != warm[i].ID {
			t.Fatalf("position %d: cold tuple %d, warm tuple %d", i, cold[i].ID, warm[i].ID)
		}
	}
}

// Exhaustive small-world check: on a tiny database every algorithm must
// produce the exact full ordering for every sign combination.
func TestExhaustiveSmallWorld(t *testing.T) {
	cat := datagen.Uniform(60, 2, 23)
	for _, expr := range []string{"a0", "-a0", "a0 + a1", "a0 - a1", "-a0 - a1", "-a0 + 0.3*a1"} {
		for _, algo := range allAlgorithms {
			db := newDB(t, cat, 7)
			r, err := New(db, Options{Algorithm: algo, Normalization: normOf(cat)})
			if err != nil {
				t.Fatal(err)
			}
			st, err := r.Rerank(context.Background(), Query{Rank: ranking.MustParse(expr)})
			if err != nil {
				t.Fatal(err)
			}
			got, err := st.NextN(context.Background(), 60)
			if err != nil {
				t.Fatalf("%s/%s: %v", algo, expr, err)
			}
			if len(got) != 60 {
				t.Fatalf("%s/%s: produced %d of 60", algo, expr, len(got))
			}
			want := BruteForceTop(cat.Rel, relation.Predicate{}, st.Scorer(), 60)
			for i := range got {
				gs, ws := st.Scorer().Score(got[i]), st.Scorer().Score(want[i])
				if math.Abs(gs-ws) > 1e-9 {
					t.Fatalf("%s/%s: position %d: %v vs %v", algo, expr, i, gs, ws)
				}
			}
		}
	}
}

func mustLocalDB(t *testing.T, cat *datagen.Catalog, k int) *hidden.Local {
	t.Helper()
	db, err := hidden.NewLocal(cat.Name, cat.Rel, k, cat.Rank)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func normOf(cat *datagen.Catalog) *ranking.Normalization {
	n := ranking.FromSchema(cat.Rel.Schema())
	return &n
}

// TestEngineCrawlRefillsAnswerCache: when the database behind the engine
// is an answer cache, a dense-region crawl publishes the region's
// complete match set back into it (crawl.Admitter), so the crawl's spend
// also warms the answer layer, not just the dense index.
func TestEngineCrawlRefillsAnswerCache(t *testing.T) {
	cat := denseFixture(t)
	inner := newDB(t, cat, 20)
	cache, err := qcache.New(inner, qcache.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(cache, Options{Algorithm: Rerank, DenseDepth: 9})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	st, err := r.Rerank(ctx, Query{Rank: ranking.Ascending("a0")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.NextN(ctx, 10); err != nil {
		t.Fatal(err)
	}
	if st.TotalStats().DenseCrawls == 0 {
		t.Fatalf("fixture did not force a dense crawl: %+v", st.TotalStats())
	}
	cs := cache.Stats()
	if cs.CrawlEntries == 0 {
		t.Fatalf("engine crawl did not refill the answer cache: %+v", cs)
	}
}
