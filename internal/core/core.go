// Package core implements the QR2 query reranking algorithms — the paper's
// primary contribution.
//
// Given a hidden web database exposing only a top-k search interface with a
// proprietary ranking function, a user filter query q and a user-specified
// monotone linear ranking function f, the package answers get-next: having
// produced the top-h tuples of q under f, discover tuple number h+1 while
// minimising the number of queries issued to the database.
//
// Four algorithm families from the paper are provided, for both the 1D
// (single ranking attribute) and MD (multi-attribute) settings:
//
//   - Baseline — broad queries over the remaining search space, narrowed
//     against the rank contour of the best-known tuple after every overflow.
//   - Binary — recursive halving of the search space with contour pruning.
//   - Rerank — Binary plus the on-the-fly dense-region index: a narrow
//     region that still overflows is crawled once, stored in the shared
//     index, and every later query over it is answered without touching the
//     web database.
//   - TA — (MD only) Fagin's Threshold Algorithm over per-attribute
//     1D-Rerank sorted-access streams.
//
// All algorithms are exact: the stream of Next results equals the
// brute-force ordering of the matching tuples by (f(t), tuple ID).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/dense"
	"repro/internal/hidden"
	"repro/internal/kvstore"
	"repro/internal/parallel"
	"repro/internal/ranking"
	"repro/internal/relation"
)

// Algorithm selects the get-next strategy.
type Algorithm string

const (
	// Baseline is (1D/MD)-BASELINE: broad queries narrowed by the rank
	// contour; stateless across get-next calls.
	Baseline Algorithm = "baseline"
	// Binary is (1D/MD)-BINARY: recursive halving with contour pruning.
	Binary Algorithm = "binary"
	// Rerank is (1D/MD)-RERANK: Binary plus the dense-region oracle.
	Rerank Algorithm = "rerank"
	// TA is MD-TA: the threshold algorithm over 1D-Rerank streams. It is
	// also valid for a single ranking attribute, where it degenerates to
	// 1D-Rerank itself.
	TA Algorithm = "ta"
)

// ErrBudget is returned by Next when one get-next operation exceeds
// Options.MaxQueriesPerNext web database queries.
var ErrBudget = errors.New("core: get-next query budget exhausted")

// TupleCache is the user-level session cache of §II-A: tuples already seen
// on behalf of a user. Implemented by *session.Session. Every cached tuple
// matching the filter seeds the get-next search with a warm candidate,
// tightening the rank contour before the first query is issued.
type TupleCache interface {
	CacheTuples(ts ...relation.Tuple)
	CachedMatching(p relation.Predicate) []relation.Tuple
}

// Options configures a Reranker.
type Options struct {
	// Algorithm selects the strategy (default Rerank).
	Algorithm Algorithm
	// Parallel enables parallel verification and subspace queries
	// (§II-B). Default on; set SequentialOnly to disable.
	SequentialOnly bool
	// MaxParallel bounds in-flight queries per batch (default 8).
	MaxParallel int
	// SimLatency is the simulated per-query round-trip used for the
	// statistics panel's processing-time accounting.
	SimLatency time.Duration
	// DenseDepth is the split depth at which Rerank declares a still-
	// overflowing region dense and crawls it into the shared index
	// (default 16 — the region kept more than system-k tuples through
	// sixteen halvings). Baseline and Binary crawl only unsplittable
	// regions, which is forced by correctness.
	DenseDepth int
	// MaxQueriesPerNext bounds the queries a single get-next may issue
	// (default 20000).
	MaxQueriesPerNext int
	// DenseIndex is the shared on-the-fly index. When nil, Rerank gets a
	// fresh in-memory index private to this Reranker.
	DenseIndex *dense.Index
	// DenseResidentBytes sizes the decoded-tuple residency of a private
	// dense index (zero = dense.DefaultResidentBytes, negative disables).
	// Ignored when DenseIndex is provided: a shared index carries its own
	// budget.
	DenseResidentBytes int64
	// Cache is the per-user session cache (may be nil).
	Cache TupleCache
	// Normalization overrides interface-based min/max discovery. Leave
	// nil to discover the attribute extrema through the public interface
	// (the paper's approach).
	Normalization *ranking.Normalization
}

func (o Options) withDefaults() Options {
	if o.Algorithm == "" {
		o.Algorithm = Rerank
	}
	if o.MaxParallel <= 0 {
		o.MaxParallel = 8
	}
	if o.DenseDepth <= 0 {
		o.DenseDepth = 16
	}
	if o.MaxQueriesPerNext <= 0 {
		o.MaxQueriesPerNext = 20000
	}
	return o
}

// Query is a reranking request: a filter predicate plus a user ranking
// function.
type Query struct {
	Pred relation.Predicate
	Rank ranking.Function
}

// Reranker answers reranking queries over one hidden web database. It is
// safe for concurrent use; concurrent streams share the dense-region index
// and the normalisation but have independent statistics.
type Reranker struct {
	db  hidden.DB
	opt Options
	ix  *dense.Index

	normMu      sync.Mutex
	norm        *ranking.Normalization
	normQueries int64
}

// New builds a Reranker over a hidden database.
func New(db hidden.DB, opt Options) (*Reranker, error) {
	opt = opt.withDefaults()
	switch opt.Algorithm {
	case Baseline, Binary, Rerank, TA:
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", opt.Algorithm)
	}
	r := &Reranker{db: db, opt: opt, ix: opt.DenseIndex}
	if r.ix == nil {
		ix, err := dense.Open(db.Schema(), kvstore.NewMemory(), dense.WithResidentBytes(opt.DenseResidentBytes))
		if err != nil {
			return nil, err
		}
		r.ix = ix
	}
	if opt.Normalization != nil {
		n := *opt.Normalization
		r.norm = &n
	}
	return r, nil
}

// DB returns the underlying database.
func (r *Reranker) DB() hidden.DB { return r.db }

// DenseIndex returns the shared dense-region index.
func (r *Reranker) DenseIndex() *dense.Index { return r.ix }

// NormalizationQueries reports how many queries min/max discovery cost.
// The cost is paid once per Reranker and amortised over all streams.
func (r *Reranker) NormalizationQueries() int64 {
	r.normMu.Lock()
	defer r.normMu.Unlock()
	return r.normQueries
}

// newExecutor builds a per-stream query executor from the options.
func (r *Reranker) newExecutor() *parallel.Executor {
	return parallel.New(r.db,
		parallel.WithParallel(!r.opt.SequentialOnly),
		parallel.WithMaxParallel(r.opt.MaxParallel),
		parallel.WithSimLatency(r.opt.SimLatency),
	)
}

// Normalization returns the min–max normalisation for the database's
// numeric attributes, discovering the extrema through the public search
// interface on first use (paper §II-B: "obtaining the min and max values on
// each attribute is simply doable using the 1D-RERANK algorithm").
//
// The discovered bounds are sound: the returned minimum is never above the
// true minimum and the maximum never below the true maximum, so every tuple
// normalises into [0, 1].
func (r *Reranker) Normalization(ctx context.Context) (ranking.Normalization, error) {
	r.normMu.Lock()
	defer r.normMu.Unlock()
	if r.norm != nil {
		return *r.norm, nil
	}
	schema := r.db.Schema()
	ex := r.newExecutor()
	n := ranking.Normalization{Min: make([]float64, schema.Len()), Max: make([]float64, schema.Len())}
	for i := 0; i < schema.Len(); i++ {
		a := schema.Attr(i)
		if a.Kind != relation.Numeric {
			continue
		}
		lo, err := discoverExtreme(ctx, ex, i, a, false)
		if err != nil {
			return ranking.Normalization{}, fmt.Errorf("core: discover min of %q: %w", a.Name, err)
		}
		hi, err := discoverExtreme(ctx, ex, i, a, true)
		if err != nil {
			return ranking.Normalization{}, fmt.Errorf("core: discover max of %q: %w", a.Name, err)
		}
		if hi < lo {
			lo, hi = a.Min, a.Max
		}
		n.Min[i], n.Max[i] = lo, hi
	}
	r.norm = &n
	r.normQueries = ex.Stats().Queries
	return n, nil
}

// discoverExtreme finds a sound bound for the smallest (descending=false)
// or largest (descending=true) value of attribute attr using only top-k
// queries: a binary descent towards the boundary of the provably empty
// region. The result is a value v with v <= true-min (resp. v >= true-max),
// within one resolution step of the truth.
func discoverExtreme(ctx context.Context, ex *parallel.Executor, attr int, a relation.Attribute, descending bool) (float64, error) {
	domain := a.Domain()
	res, err := ex.Search(ctx, relation.Predicate{})
	if err != nil {
		return 0, err
	}
	if len(res.Tuples) == 0 {
		// Empty database: fall back to the advertised domain.
		if descending {
			return a.Max, nil
		}
		return a.Min, nil
	}
	best := res.Tuples[0].Values[attr]
	for _, t := range res.Tuples[1:] {
		if v := t.Values[attr]; (descending && v > best) || (!descending && v < best) {
			best = v
		}
	}
	if !res.Overflow {
		return best, nil
	}
	minWidth := a.Resolution
	if minWidth <= 0 {
		minWidth = (a.Max - a.Min) * 1e-9
	}
	// proven is the boundary of the region shown to contain no tuples;
	// the true extreme lies between proven and best.
	proven := domain.Lo
	if descending {
		proven = domain.Hi
	}
	for iter := 0; iter < 200; iter++ {
		var width float64
		if descending {
			width = proven - best
		} else {
			width = best - proven
		}
		if width <= minWidth {
			break
		}
		var probe relation.Interval
		var mid float64
		if descending {
			mid = best + width/2
			probe = relation.OpenLo(mid, proven)
		} else {
			mid = proven + width/2
			probe = relation.OpenHi(proven, mid)
		}
		res, err := ex.Search(ctx, relation.Predicate{}.WithInterval(attr, probe))
		if err != nil {
			return 0, err
		}
		if len(res.Tuples) == 0 {
			// The probed half is empty: the extreme is on the other side.
			if descending {
				proven = mid
			} else {
				proven = mid
			}
			continue
		}
		for _, t := range res.Tuples {
			if v := t.Values[attr]; (descending && v > best) || (!descending && v < best) {
				best = v
			}
		}
		if !res.Overflow {
			// Complete view of the probed half, which contains the extreme.
			return best, nil
		}
	}
	// best is an achieved value and proven bounds the empty region; return
	// the sound side of the residual uncertainty.
	return proven, nil
}

// BruteForceTop returns the first n matching tuples of q under the stream
// ordering (score, then ID), computed by scanning rel directly. It is the
// test and documentation oracle — it sees the raw relation, which no
// third-party service could.
func BruteForceTop(rel *relation.Relation, pred relation.Predicate, sc *ranking.Scorer, n int) []relation.Tuple {
	matches := rel.Select(pred)
	order := make([]int, len(matches))
	for i := range order {
		order[i] = i
	}
	less := func(a, b int) bool {
		sa, sb := sc.Score(matches[a]), sc.Score(matches[b])
		if sa != sb {
			return sa < sb
		}
		return matches[a].ID < matches[b].ID
	}
	// Simple selection of the top-n to keep the oracle obviously correct.
	out := make([]relation.Tuple, 0, n)
	used := make([]bool, len(matches))
	for len(out) < n && len(out) < len(matches) {
		bestIdx := -1
		for i := range matches {
			if used[i] {
				continue
			}
			if bestIdx < 0 || less(i, bestIdx) {
				bestIdx = i
			}
		}
		used[bestIdx] = true
		out = append(out, matches[bestIdx])
	}
	return out
}

// negInf is the initial "score of the last produced tuple".
var negInf = math.Inf(-1)
