package core

import (
	"context"
	"fmt"

	"repro/internal/ranking"
	"repro/internal/relation"
)

// taEngine implements MD-TA: Fagin's Threshold Algorithm with sorted access
// provided by per-attribute 1D-Rerank streams (the paper's footnote 3).
//
// For each ranking attribute Aᵢ a 1D stream produces the matching tuples in
// the direction of the weight's sign, so the contribution wᵢ·xᵢ of the last
// tuple pulled from stream i is non-decreasing. The threshold
// τ = Σᵢ wᵢ·x̄ᵢ lower-bounds the score of every tuple not yet pulled from
// any stream; once the best pulled-but-unproduced tuple scores no worse
// than τ, it is the true next tuple. Because the web database returns whole
// tuples, no random access phase is needed.
type taEngine struct {
	st       *Stream
	subs     []*Stream
	frontier []float64 // wᵢ·x̄ᵢ per stream
	started  []bool
	done     []bool
	lastSub  []OpStats // last TotalStats snapshot per sub, for delta booking
	rr       int
	allSeen  bool
}

func newTAEngine(ctx context.Context, st *Stream) (*taEngine, error) {
	attrs, weights := st.scorer.Attrs(), st.scorer.Weights()
	schema := st.r.db.Schema()
	norm := st.scorer.Norm()
	e := &taEngine{
		st:       st,
		frontier: make([]float64, len(attrs)),
		started:  make([]bool, len(attrs)),
		done:     make([]bool, len(attrs)),
		lastSub:  make([]OpStats, len(attrs)),
	}
	for i, a := range attrs {
		name := schema.Attr(a).Name
		fn := ranking.Ascending(name)
		if weights[i] < 0 {
			fn = ranking.Descending(name)
		}
		subOpt := st.r.opt
		subOpt.Algorithm = Rerank
		subOpt.DenseIndex = st.r.ix
		subOpt.Normalization = &norm
		sub, err := New(st.r.db, subOpt)
		if err != nil {
			return nil, err
		}
		subStream, err := sub.Rerank(ctx, Query{Pred: st.pred, Rank: fn})
		if err != nil {
			return nil, fmt.Errorf("core: MD-TA sorted access on %q: %w", name, err)
		}
		e.subs = append(e.subs, subStream)
	}
	return e, nil
}

// next implements nextImpl.
func (e *taEngine) next(ctx context.Context) (relation.Tuple, bool, error) {
	attrs, weights := e.st.scorer.Attrs(), e.st.scorer.Weights()
	norm := e.st.scorer.Norm()
	for iter := 0; iter < 1<<22; iter++ {
		if err := ctx.Err(); err != nil {
			return relation.Tuple{}, false, err
		}
		cand, candScore, haveCand := e.st.bestCandidate()
		if e.allSeen {
			// Some stream drained completely, so the stash holds every
			// matching tuple: answer directly.
			if haveCand {
				return cand, true, nil
			}
			return relation.Tuple{}, false, nil
		}
		if haveCand && e.allStarted() {
			tau := 0.0
			for _, f := range e.frontier {
				tau += f
			}
			if tau >= candScore-1e-12 {
				return cand, true, nil
			}
		}
		// Pull one tuple from the next live stream (round-robin).
		pulled := false
		for tries := 0; tries < len(e.subs); tries++ {
			i := e.rr
			e.rr = (e.rr + 1) % len(e.subs)
			if e.done[i] {
				continue
			}
			t, ok, err := e.pullSub(ctx, i)
			if err != nil {
				return relation.Tuple{}, false, err
			}
			if !ok {
				e.done[i] = true
				e.allSeen = true
				break
			}
			e.started[i] = true
			e.frontier[i] = weights[i] * norm.Normalize(attrs[i], t.Values[attrs[i]])
			e.st.observe([]relation.Tuple{t})
			pulled = true
			break
		}
		if !pulled && !e.allSeen {
			// Every stream is done.
			e.allSeen = true
		}
	}
	return relation.Tuple{}, false, fmt.Errorf("core: MD-TA failed to converge")
}

// pullSub advances sorted access on stream i, booking its work (queries,
// batches, crawls) into the TA stream's per-call statistics.
func (e *taEngine) pullSub(ctx context.Context, i int) (relation.Tuple, bool, error) {
	t, ok, err := e.subs[i].Next(ctx)
	delta := diffStats(e.subs[i].TotalStats(), e.lastSub[i])
	e.lastSub[i] = e.subs[i].TotalStats()
	// The sub-stream's produced count and internal wall time are not
	// user-visible work of the TA stream.
	delta.Produced = 0
	delta.Elapsed = 0
	e.st.last.add(delta)
	return t, ok, err
}

func (e *taEngine) allStarted() bool {
	for _, s := range e.started {
		if !s {
			return false
		}
	}
	return true
}

// diffStats subtracts an earlier cumulative snapshot from a later one.
func diffStats(after, before OpStats) OpStats {
	return OpStats{
		Queries:           after.Queries - before.Queries,
		Batches:           after.Batches - before.Batches,
		ParallelBatches:   after.ParallelBatches - before.ParallelBatches,
		QueriesInParallel: after.QueriesInParallel - before.QueriesInParallel,
		BatchSizes:        append([]int(nil), after.BatchSizes[len(before.BatchSizes):]...),
		SimElapsed:        after.SimElapsed - before.SimElapsed,
		Elapsed:           after.Elapsed - before.Elapsed,
		DenseHits:         after.DenseHits - before.DenseHits,
		DenseCrawls:       after.DenseCrawls - before.DenseCrawls,
		CrawledTuples:     after.CrawledTuples - before.CrawledTuples,
		CacheCandidates:   after.CacheCandidates - before.CacheCandidates,
		Produced:          after.Produced - before.Produced,
		Saturated:         after.Saturated - before.Saturated,
	}
}
