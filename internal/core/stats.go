package core

import (
	"time"

	"repro/internal/parallel"
)

// OpStats describes the work one or more get-next operations performed —
// the data behind QR2's statistics panel (Fig 4) and the parallelism plot
// (Fig 2).
type OpStats struct {
	// Queries issued to the web database.
	Queries int64
	// Batches is the number of query iterations (waves).
	Batches int64
	// ParallelBatches counts iterations with more than one query.
	ParallelBatches int64
	// QueriesInParallel counts queries submitted in parallel batches.
	QueriesInParallel int64
	// BatchSizes is the per-iteration query count series (Fig 2).
	BatchSizes []int
	// SimElapsed is simulated wall-clock (one latency per parallel wave).
	SimElapsed time.Duration
	// Elapsed is real time spent inside Next.
	Elapsed time.Duration
	// DenseHits counts regions answered from the dense index with no
	// web database queries.
	DenseHits int64
	// DenseCrawls counts regions crawled into the dense index.
	DenseCrawls int64
	// CrawledTuples counts tuples materialised by crawls.
	CrawledTuples int64
	// CacheCandidates counts session-cache tuples used as warm candidates.
	CacheCandidates int64
	// Produced counts tuples returned to the user.
	Produced int64
	// Saturated counts regions whose excess identical tuples are
	// unreachable through the interface (see crawl.Stats).
	Saturated int64
}

// ParallelQueryFraction is the share of queries submitted in parallel
// batches — the Fig 2 headline number.
func (s OpStats) ParallelQueryFraction() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.QueriesInParallel) / float64(s.Queries)
}

// add accumulates o into s.
func (s *OpStats) add(o OpStats) {
	s.Queries += o.Queries
	s.Batches += o.Batches
	s.ParallelBatches += o.ParallelBatches
	s.QueriesInParallel += o.QueriesInParallel
	s.BatchSizes = append(s.BatchSizes, o.BatchSizes...)
	s.SimElapsed += o.SimElapsed
	s.Elapsed += o.Elapsed
	s.DenseHits += o.DenseHits
	s.DenseCrawls += o.DenseCrawls
	s.CrawledTuples += o.CrawledTuples
	s.CacheCandidates += o.CacheCandidates
	s.Produced += o.Produced
	s.Saturated += o.Saturated
}

// execDelta converts the difference of two executor snapshots into OpStats
// fields.
func execDelta(before, after parallel.Stats) OpStats {
	return OpStats{
		Queries:           after.Queries - before.Queries,
		Batches:           after.Batches - before.Batches,
		ParallelBatches:   after.ParallelBatches - before.ParallelBatches,
		QueriesInParallel: after.QueriesInParallel - before.QueriesInParallel,
		BatchSizes:        append([]int(nil), after.BatchSizes[len(before.BatchSizes):]...),
		SimElapsed:        after.SimElapsed - before.SimElapsed,
	}
}
