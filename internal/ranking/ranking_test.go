package ranking

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func schema(t *testing.T) *relation.Schema {
	t.Helper()
	return relation.MustSchema(
		relation.Attribute{Name: "price", Kind: relation.Numeric, Min: 0, Max: 1000},
		relation.Attribute{Name: "carat", Kind: relation.Numeric, Min: 0, Max: 10},
		relation.Attribute{Name: "cut", Kind: relation.Categorical, Categories: []string{"a", "b"}},
		relation.Attribute{Name: "depth", Kind: relation.Numeric, Min: 50, Max: 80},
	)
}

func TestValidate(t *testing.T) {
	cases := []struct {
		f    Function
		want string
	}{
		{Function{}, "no terms"},
		{Function{Terms: []Term{{Attr: "", Weight: 1}}}, "empty attribute"},
		{Function{Terms: []Term{{Attr: "a", Weight: 1}, {Attr: "a", Weight: 2}}}, "duplicate"},
		{Function{Terms: []Term{{Attr: "a", Weight: 0}}}, "invalid weight"},
		{Function{Terms: []Term{{Attr: "a", Weight: math.NaN()}}}, "invalid weight"},
	}
	for _, c := range cases {
		err := c.f.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%v) = %v, want containing %q", c.f, err, c.want)
		}
	}
	ok := Function{Terms: []Term{{Attr: "a", Weight: -0.5}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid function rejected: %v", err)
	}
}

func TestAscendingDescending(t *testing.T) {
	a := Ascending("price")
	if len(a.Terms) != 1 || a.Terms[0].Weight != 1 {
		t.Fatalf("Ascending = %v", a)
	}
	d := Descending("price")
	if d.Terms[0].Weight != -1 {
		t.Fatalf("Descending = %v", d)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		expr string
		want []Term
	}{
		{"price", []Term{{"price", 1}}},
		{"-price", []Term{{"price", -1}}},
		{"price - 0.3*sqft", []Term{{"price", 1}, {"sqft", -0.3}}},
		{"price - 0.1 carat - 0.5 depth", []Term{{"price", 1}, {"carat", -0.1}, {"depth", -0.5}}},
		{"price + LengthWidthRatio", []Term{{"price", 1}, {"LengthWidthRatio", 1}}},
		{"2*price + price", []Term{{"price", 3}}},
		{"0.5 * a_1 + 0.25*a_2", []Term{{"a_1", 0.5}, {"a_2", 0.25}}},
		{"+price", []Term{{"price", 1}}},
	}
	for _, c := range cases {
		f, err := Parse(c.expr)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.expr, err)
			continue
		}
		if len(f.Terms) != len(c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.expr, f.Terms, c.want)
			continue
		}
		for i := range c.want {
			if f.Terms[i].Attr != c.want[i].Attr || math.Abs(f.Terms[i].Weight-c.want[i].Weight) > 1e-12 {
				t.Errorf("Parse(%q)[%d] = %+v, want %+v", c.expr, i, f.Terms[i], c.want[i])
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, expr := range []string{
		"", "  ", "1.2", "price +", "+ - price", "price price", "0..3*x",
		"price & carat", "*price", "price - price", "3*", "price 0.3",
	} {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", expr)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	for _, expr := range []string{
		"price", "-price", "price - 0.3*sqft", "price + 0.1*carat - 0.5*depth",
	} {
		f := MustParse(expr)
		g, err := Parse(f.String())
		if err != nil {
			t.Fatalf("round trip of %q via %q: %v", expr, f.String(), err)
		}
		if len(g.Terms) != len(f.Terms) {
			t.Fatalf("round trip changed arity: %v vs %v", f, g)
		}
		for i := range f.Terms {
			if g.Terms[i] != f.Terms[i] {
				t.Fatalf("round trip changed term %d: %+v vs %+v", i, f.Terms[i], g.Terms[i])
			}
		}
	}
}

func TestNormalization(t *testing.T) {
	s := schema(t)
	n := FromSchema(s)
	if got := n.Normalize(0, 500); got != 0.5 {
		t.Fatalf("Normalize = %v, want 0.5", got)
	}
	if got := n.Denormalize(0, 0.5); got != 500 {
		t.Fatalf("Denormalize = %v, want 500", got)
	}
	// Degenerate span normalises to 0.
	n2 := Normalization{Min: []float64{5}, Max: []float64{5}}
	if got := n2.Normalize(0, 5); got != 0 {
		t.Fatalf("degenerate Normalize = %v", got)
	}
}

// Property: Denormalize(Normalize(v)) is the identity within float error.
func TestNormalizationRoundTripProperty(t *testing.T) {
	n := Normalization{Min: []float64{100}, Max: []float64{100000}}
	f := func(raw float64) bool {
		v := math.Mod(math.Abs(raw), 99900) + 100
		back := n.Denormalize(0, n.Normalize(0, v))
		return math.Abs(back-v) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestBindErrors(t *testing.T) {
	s := schema(t)
	n := FromSchema(s)
	if _, err := Bind(MustParse("nope"), s, n); err == nil {
		t.Fatal("unknown attribute bound")
	}
	if _, err := Bind(MustParse("cut"), s, n); err == nil {
		t.Fatal("categorical attribute bound")
	}
	if _, err := Bind(Function{}, s, n); err == nil {
		t.Fatal("empty function bound")
	}
	if _, err := Bind(MustParse("price"), s, Normalization{Min: []float64{0}, Max: []float64{1}}); err == nil {
		t.Fatal("wrong-arity normalisation bound")
	}
}

func TestScorerScore(t *testing.T) {
	s := schema(t)
	n := FromSchema(s)
	sc, err := Bind(MustParse("price - 0.5*carat"), s, n)
	if err != nil {
		t.Fatal(err)
	}
	tu := relation.Tuple{Values: []float64{500, 5, 0, 60}}
	// norm(price)=0.5, norm(carat)=0.5 → 0.5 - 0.25 = 0.25
	if got := sc.Score(tu); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Score = %v, want 0.25", got)
	}
	if sc.Dims() != 2 {
		t.Fatalf("Dims = %d", sc.Dims())
	}
	attrs := sc.Attrs()
	if attrs[0] != 0 || attrs[1] != 1 {
		t.Fatalf("Attrs = %v (must be schema-ordered)", attrs)
	}
	if w := sc.Weights(); w[0] != 1 || w[1] != -0.5 {
		t.Fatalf("Weights = %v", w)
	}
	if got := sc.ScorePoint([]float64{0.5, 0.5}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("ScorePoint = %v", got)
	}
}

func TestScorerAttrsSortedRegardlessOfTermOrder(t *testing.T) {
	s := schema(t)
	n := FromSchema(s)
	sc, err := Bind(MustParse("0.2*depth + price"), s, n)
	if err != nil {
		t.Fatal(err)
	}
	attrs := sc.Attrs()
	if attrs[0] != 0 || attrs[1] != 3 {
		t.Fatalf("Attrs = %v, want [0 3]", attrs)
	}
	if w := sc.Weights(); w[0] != 1 || w[1] != 0.2 {
		t.Fatalf("Weights = %v, want [1 0.2]", w)
	}
}

// Property: Score is monotone — increasing a positively weighted attribute
// never decreases the score; increasing a negatively weighted one never
// increases it.
func TestScorerMonotoneProperty(t *testing.T) {
	s := schema(t)
	n := FromSchema(s)
	sc, err := Bind(MustParse("price - 0.3*carat"), s, n)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		tu := relation.Tuple{Values: []float64{r.Float64() * 1000, r.Float64() * 10, 0, 50 + r.Float64()*30}}
		up := tu.Clone()
		up.Values[0] += r.Float64() * 100 // price up → score up
		if sc.Score(up) < sc.Score(tu)-1e-12 {
			t.Fatal("score not monotone in price")
		}
		up2 := tu.Clone()
		up2.Values[1] += r.Float64() // carat up → score down
		if sc.Score(up2) > sc.Score(tu)+1e-12 {
			t.Fatal("score not anti-monotone in carat")
		}
	}
}
