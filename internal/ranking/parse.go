package ranking

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a ranking expression in the syntax QR2's popular-functions
// list uses:
//
//	expr   := ['-'] term (('+' | '-') term)*
//	term   := [number ['*']] attribute
//	number := decimal constant, e.g. 0.3
//	attr   := identifier (letters, digits, '_', starting with a letter)
//
// Examples: "price", "-carat", "price - 0.3*sqft", "price + 0.1 carat".
// Duplicate attributes are merged by summing their weights; a merged weight
// of zero is an error (the attribute would not constrain the ranking).
func Parse(expr string) (Function, error) {
	toks, err := tokenize(expr)
	if err != nil {
		return Function{}, err
	}
	if len(toks) == 0 {
		return Function{}, fmt.Errorf("ranking: empty expression")
	}
	var (
		terms []Term
		order []string
		byA   = map[string]int{}
		i     = 0
	)
	sign := 1.0
	if toks[0].kind == tokOp {
		switch toks[0].text {
		case "-":
			sign = -1
		case "+":
		default:
			return Function{}, fmt.Errorf("ranking: expression cannot start with %q", toks[0].text)
		}
		i++
	}
	for {
		w := sign
		if i < len(toks) && toks[i].kind == tokNumber {
			f, err := strconv.ParseFloat(toks[i].text, 64)
			if err != nil {
				return Function{}, fmt.Errorf("ranking: bad number %q", toks[i].text)
			}
			w *= f
			i++
			if i < len(toks) && toks[i].kind == tokOp && toks[i].text == "*" {
				i++
			}
		}
		if i >= len(toks) || toks[i].kind != tokIdent {
			return Function{}, fmt.Errorf("ranking: expected attribute name in %q", expr)
		}
		attr := toks[i].text
		i++
		if j, ok := byA[attr]; ok {
			terms[j].Weight += w
		} else {
			byA[attr] = len(terms)
			terms = append(terms, Term{Attr: attr, Weight: w})
			order = append(order, attr)
		}
		if i == len(toks) {
			break
		}
		if toks[i].kind != tokOp || (toks[i].text != "+" && toks[i].text != "-") {
			return Function{}, fmt.Errorf("ranking: expected + or - before %q", toks[i].text)
		}
		sign = 1
		if toks[i].text == "-" {
			sign = -1
		}
		i++
	}
	_ = order
	f := Function{Terms: terms}
	if err := f.Validate(); err != nil {
		return Function{}, err
	}
	return f, nil
}

// MustParse is Parse that panics on error, for tests and static examples.
func MustParse(expr string) Function {
	f, err := Parse(expr)
	if err != nil {
		panic(err)
	}
	return f
}

type tokKind uint8

const (
	tokNumber tokKind = iota
	tokIdent
	tokOp
)

type token struct {
	kind tokKind
	text string
}

func tokenize(expr string) ([]token, error) {
	var toks []token
	rs := []rune(expr)
	for i := 0; i < len(rs); {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '+' || r == '-' || r == '*':
			toks = append(toks, token{tokOp, string(r)})
			i++
		case unicode.IsDigit(r) || r == '.':
			j := i
			for j < len(rs) && (unicode.IsDigit(rs[j]) || rs[j] == '.') {
				j++
			}
			text := string(rs[i:j])
			if strings.Count(text, ".") > 1 {
				return nil, fmt.Errorf("ranking: malformed number %q", text)
			}
			toks = append(toks, token{tokNumber, text})
			i = j
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, string(rs[i:j])})
			i = j
		default:
			return nil, fmt.Errorf("ranking: unexpected character %q in expression", string(r))
		}
	}
	return toks, nil
}
