// Package ranking models user-specified ranking functions.
//
// Following the paper, a ranking function is a monotone linear combination
// f(t) = Σᵢ wᵢ·normᵢ(t[Aᵢ]) of min–max normalised numeric attributes, with
// weights in any range (the QR2 UI uses sliders in [-1, 1]). Scores are
// minimised: the best tuple has the smallest f. One-dimensional ascending
// and descending orders are the single-term special cases with weights +1
// and -1.
//
// The package provides the function model, a small expression parser for
// strings such as "price - 0.3*sqft" (the format QR2's popular-functions
// list uses), per-schema binding with normalisation, and helpers the core
// algorithms need (weight vectors over the ranking attributes).
package ranking

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/relation"
)

// Term is one weighted attribute of a ranking function.
type Term struct {
	Attr   string
	Weight float64
}

// Function is a user-specified linear ranking function. Lower scores rank
// first.
type Function struct {
	Terms []Term
}

// Ascending ranks by a single attribute, smallest value first.
func Ascending(attr string) Function {
	return Function{Terms: []Term{{Attr: attr, Weight: 1}}}
}

// Descending ranks by a single attribute, largest value first.
func Descending(attr string) Function {
	return Function{Terms: []Term{{Attr: attr, Weight: -1}}}
}

// Validate checks that the function has at least one term, no duplicate
// attributes, and no zero or non-finite weights.
func (f Function) Validate() error {
	if len(f.Terms) == 0 {
		return fmt.Errorf("ranking: function has no terms")
	}
	seen := map[string]bool{}
	for _, t := range f.Terms {
		if t.Attr == "" {
			return fmt.Errorf("ranking: term with empty attribute")
		}
		if seen[t.Attr] {
			return fmt.Errorf("ranking: duplicate attribute %q", t.Attr)
		}
		seen[t.Attr] = true
		if t.Weight == 0 || math.IsNaN(t.Weight) || math.IsInf(t.Weight, 0) {
			return fmt.Errorf("ranking: attribute %q has invalid weight %v", t.Attr, t.Weight)
		}
	}
	return nil
}

// String renders the function in the parser's syntax.
func (f Function) String() string {
	var b strings.Builder
	for i, t := range f.Terms {
		w := t.Weight
		if i == 0 {
			if w < 0 {
				b.WriteString("-")
				w = -w
			}
		} else {
			if w < 0 {
				b.WriteString(" - ")
				w = -w
			} else {
				b.WriteString(" + ")
			}
		}
		if w == 1 {
			b.WriteString(t.Attr)
		} else {
			fmt.Fprintf(&b, "%g*%s", w, t.Attr)
		}
	}
	return b.String()
}

// Normalization holds per-attribute min–max bounds used to place all
// ranking attributes on a comparable [0, 1] scale (paper §II-B, "attributes
// with different cardinalities"). Slices are aligned with the schema.
type Normalization struct {
	Min, Max []float64
}

// FromSchema builds a normalisation from the domains the schema declares.
// QR2 proper discovers the true extrema through the public interface (see
// core.DiscoverNormalization); this constructor is the fallback and test
// fixture.
func FromSchema(s *relation.Schema) Normalization {
	n := Normalization{Min: make([]float64, s.Len()), Max: make([]float64, s.Len())}
	for i := 0; i < s.Len(); i++ {
		a := s.Attr(i)
		n.Min[i], n.Max[i] = a.Min, a.Max
	}
	return n
}

// Normalize maps a raw attribute value to [0, 1] (values outside the
// recorded extrema clamp beyond that range linearly; no clipping, so
// monotonicity is exact).
func (n Normalization) Normalize(attr int, raw float64) float64 {
	span := n.Max[attr] - n.Min[attr]
	if span <= 0 {
		return 0
	}
	return (raw - n.Min[attr]) / span
}

// Denormalize maps a normalised coordinate back to a raw value.
func (n Normalization) Denormalize(attr int, x float64) float64 {
	return n.Min[attr] + x*(n.Max[attr]-n.Min[attr])
}

// Scorer is a ranking function bound to a schema and a normalisation. It is
// immutable and safe for concurrent use.
type Scorer struct {
	attrs   []int
	weights []float64
	norm    Normalization
}

// Bind resolves a function's attribute names against the schema, checks that
// every ranking attribute is numeric, and returns a Scorer. Ranking
// attributes are ordered by schema position.
func Bind(f Function, s *relation.Schema, n Normalization) (*Scorer, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if len(n.Min) != s.Len() || len(n.Max) != s.Len() {
		return nil, fmt.Errorf("ranking: normalisation arity %d does not match schema %d", len(n.Min), s.Len())
	}
	type bound struct {
		attr int
		w    float64
	}
	bounds := make([]bound, 0, len(f.Terms))
	for _, t := range f.Terms {
		i, ok := s.Lookup(t.Attr)
		if !ok {
			return nil, fmt.Errorf("ranking: unknown attribute %q", t.Attr)
		}
		if s.Attr(i).Kind != relation.Numeric {
			return nil, fmt.Errorf("ranking: attribute %q is categorical and cannot be ranked", t.Attr)
		}
		bounds = append(bounds, bound{attr: i, w: t.Weight})
	}
	sort.Slice(bounds, func(a, b int) bool { return bounds[a].attr < bounds[b].attr })
	sc := &Scorer{norm: n}
	for _, b := range bounds {
		sc.attrs = append(sc.attrs, b.attr)
		sc.weights = append(sc.weights, b.w)
	}
	return sc, nil
}

// Attrs returns the schema positions of the ranking attributes in
// increasing order. The slice must not be modified.
func (sc *Scorer) Attrs() []int { return sc.attrs }

// Weights returns the weights aligned with Attrs. The slice must not be
// modified.
func (sc *Scorer) Weights() []float64 { return sc.weights }

// Dims returns the number of ranking attributes.
func (sc *Scorer) Dims() int { return len(sc.attrs) }

// Norm returns the scorer's normalisation.
func (sc *Scorer) Norm() Normalization { return sc.norm }

// Score evaluates the ranking function on a tuple; lower is better.
func (sc *Scorer) Score(t relation.Tuple) float64 {
	var s float64
	for i, a := range sc.attrs {
		s += sc.weights[i] * sc.norm.Normalize(a, t.Values[a])
	}
	return s
}

// ScorePoint evaluates the function at a normalised coordinate vector
// aligned with Attrs.
func (sc *Scorer) ScorePoint(x []float64) float64 {
	var s float64
	for i := range sc.attrs {
		s += sc.weights[i] * x[i]
	}
	return s
}
