package parallel

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/hidden"
	"repro/internal/relation"
)

func newExec(t *testing.T, opts ...Option) (*Executor, hidden.DB) {
	t.Helper()
	cat := datagen.Uniform(500, 2, 1)
	db, err := hidden.NewLocal(cat.Name, cat.Rel, 20, cat.Rank)
	if err != nil {
		t.Fatal(err)
	}
	return New(db, opts...), db
}

func TestSearchSingle(t *testing.T) {
	e, db := newExec(t)
	res, err := e.Search(context.Background(), relation.Predicate{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 20 || !res.Overflow {
		t.Fatalf("unexpected result: %d tuples overflow=%v", len(res.Tuples), res.Overflow)
	}
	if db.(*hidden.Local).QueryCount() != 1 {
		t.Fatal("query not issued")
	}
	s := e.Stats()
	if s.Queries != 1 || s.Batches != 1 || s.ParallelBatches != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSearchBatchResultsAligned(t *testing.T) {
	e, _ := newExec(t)
	preds := []relation.Predicate{
		relation.Predicate{}.WithInterval(0, relation.Closed(0, 100)),
		relation.Predicate{}.WithInterval(0, relation.Closed(900, 1000)),
		relation.Predicate{}.WithInterval(0, relation.Closed(10, 5)), // empty
	}
	res, err := e.SearchBatch(context.Background(), preds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	for i, p := range preds[:2] {
		for _, tu := range res[i].Tuples {
			if !p.Match(tu) {
				t.Fatalf("result %d contains tuple for wrong predicate", i)
			}
		}
	}
	if len(res[2].Tuples) != 0 {
		t.Fatal("empty predicate returned tuples")
	}
}

func TestBatchStatsParallelVsSequential(t *testing.T) {
	lat := 100 * time.Millisecond
	par, _ := newExec(t, WithSimLatency(lat), WithMaxParallel(4))
	seq, _ := newExec(t, WithSimLatency(lat), WithParallel(false))
	preds := make([]relation.Predicate, 6)
	ctx := context.Background()
	if _, err := par.SearchBatch(ctx, preds); err != nil {
		t.Fatal(err)
	}
	if _, err := seq.SearchBatch(ctx, preds); err != nil {
		t.Fatal(err)
	}
	ps, ss := par.Stats(), seq.Stats()
	if ps.Queries != 6 || ss.Queries != 6 {
		t.Fatalf("query counts: %d, %d", ps.Queries, ss.Queries)
	}
	// Parallel: 6 queries over 4 max-parallel = 2 waves.
	if ps.SimElapsed != 2*lat {
		t.Fatalf("parallel SimElapsed = %v, want %v", ps.SimElapsed, 2*lat)
	}
	if ss.SimElapsed != 6*lat {
		t.Fatalf("sequential SimElapsed = %v, want %v", ss.SimElapsed, 6*lat)
	}
	if ps.ParallelBatches != 1 || ps.QueriesInParallel != 6 {
		t.Fatalf("parallel stats = %+v", ps)
	}
	if ss.ParallelBatches != 0 || ss.QueriesInParallel != 0 {
		t.Fatalf("sequential stats = %+v", ss)
	}
	if f := ps.ParallelQueryFraction(); f != 1 {
		t.Fatalf("ParallelQueryFraction = %v", f)
	}
	if f := ss.ParallelQueryFraction(); f != 0 {
		t.Fatalf("sequential ParallelQueryFraction = %v", f)
	}
}

func TestBatchSizesLog(t *testing.T) {
	e, _ := newExec(t)
	ctx := context.Background()
	_, _ = e.SearchBatch(ctx, make([]relation.Predicate, 3))
	_, _ = e.Search(ctx, relation.Predicate{})
	_, _ = e.SearchBatch(ctx, make([]relation.Predicate, 2))
	s := e.Stats()
	want := []int{3, 1, 2}
	if len(s.BatchSizes) != len(want) {
		t.Fatalf("BatchSizes = %v", s.BatchSizes)
	}
	for i := range want {
		if s.BatchSizes[i] != want[i] {
			t.Fatalf("BatchSizes = %v, want %v", s.BatchSizes, want)
		}
	}
	if s.MaxBatch != 3 {
		t.Fatalf("MaxBatch = %d", s.MaxBatch)
	}
	e.Reset()
	if s := e.Stats(); s.Queries != 0 || len(s.BatchSizes) != 0 {
		t.Fatalf("Reset left stats %+v", s)
	}
}

func TestParallelRespectsMaxInFlight(t *testing.T) {
	cat := datagen.Uniform(100, 2, 2)
	var inFlight, peak atomic.Int64
	probe := &probeDB{Local: mustLocal(t, cat), inFlight: &inFlight, peak: &peak}
	e := New(probe, WithMaxParallel(3))
	if _, err := e.SearchBatch(context.Background(), make([]relation.Predicate, 12)); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak in-flight = %d, want <= 3", p)
	}
}

func TestBatchErrorPropagates(t *testing.T) {
	cat := datagen.Uniform(100, 2, 3)
	flaky := &hidden.Flaky{Inner: mustLocal(t, cat), FailEvery: 2}
	e := New(flaky)
	_, err := e.SearchBatch(context.Background(), make([]relation.Predicate, 4))
	if err == nil {
		t.Fatal("batch with failing query succeeded")
	}
}

func TestBatchEmpty(t *testing.T) {
	e, _ := newExec(t)
	res, err := e.SearchBatch(context.Background(), nil)
	if err != nil || res != nil {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
	if s := e.Stats(); s.Batches != 0 {
		t.Fatal("empty batch recorded")
	}
}

func TestBatchContextCancel(t *testing.T) {
	e, _ := newExec(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.SearchBatch(ctx, make([]relation.Predicate, 3)); err == nil {
		t.Fatal("cancelled batch succeeded")
	}
}

type probeDB struct {
	*hidden.Local
	inFlight, peak *atomic.Int64
}

func (p *probeDB) Search(ctx context.Context, pred relation.Predicate) (hidden.Result, error) {
	n := p.inFlight.Add(1)
	for {
		cur := p.peak.Load()
		if n <= cur || p.peak.CompareAndSwap(cur, n) {
			break
		}
	}
	time.Sleep(2 * time.Millisecond)
	defer p.inFlight.Add(-1)
	return p.Local.Search(ctx, pred)
}

func mustLocal(t *testing.T, cat *datagen.Catalog) *hidden.Local {
	t.Helper()
	db, err := hidden.NewLocal(cat.Name, cat.Rel, 20, cat.Rank)
	if err != nil {
		t.Fatal(err)
	}
	return db
}
