// Package parallel routes every query the reranking algorithms issue to the
// hidden web database, adding the two facilities the QR2 paper's §II-B
// ("Parallel processing") requires:
//
//   - bounded parallel execution of query batches, used for the paper's
//     parallel verification queries and independent subspace searches; and
//   - per-iteration accounting: how many queries each iteration issued and
//     whether they went out in parallel, which is exactly the series plotted
//     in the paper's Fig 2, plus a simulated wall-clock that charges one
//     round-trip latency per wave of parallel queries (the statistics panel
//     of Fig 4).
//
// An Executor with parallelism disabled degrades to sequential execution
// with identical results, enabling the paper's parallel-vs-sequential
// ablation.
package parallel

import (
	"context"
	"sync"
	"time"

	"repro/internal/hidden"
	"repro/internal/relation"
)

// Stats aggregates executor activity. BatchSizes is the per-iteration query
// count series of Fig 2.
type Stats struct {
	// Queries is the total number of queries issued to the web database.
	Queries int64
	// Batches is the number of iterations (waves of queries).
	Batches int64
	// ParallelBatches counts iterations that issued more than one query.
	ParallelBatches int64
	// QueriesInParallel counts queries issued in parallel batches.
	QueriesInParallel int64
	// MaxBatch is the largest single batch.
	MaxBatch int
	// BatchSizes records every batch size in order.
	BatchSizes []int
	// SimElapsed is the simulated wall-clock: one PerQueryLatency per wave
	// of at most MaxParallel queries when parallelism is on, one per query
	// when off.
	SimElapsed time.Duration
}

// ParallelQueryFraction returns the fraction of queries submitted in
// parallel batches — the headline number of the paper's Fig 2 (">90%" for
// 3D, "97%" for 2D).
func (s Stats) ParallelQueryFraction() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.QueriesInParallel) / float64(s.Queries)
}

// Executor issues query batches against a hidden database.
type Executor struct {
	db          hidden.DB
	maxParallel int
	parallel    bool
	latency     time.Duration

	mu    sync.Mutex
	stats Stats
}

// Option configures an Executor.
type Option func(*Executor)

// WithParallel enables or disables parallel batch execution (default on).
func WithParallel(enabled bool) Option {
	return func(e *Executor) { e.parallel = enabled }
}

// WithMaxParallel bounds the number of in-flight queries per batch
// (default 8, matching a polite web client).
func WithMaxParallel(n int) Option {
	return func(e *Executor) {
		if n > 0 {
			e.maxParallel = n
		}
	}
}

// WithSimLatency sets the simulated per-query round-trip latency used for
// Stats.SimElapsed. It does not sleep; pair it with hidden.WithLatency to
// slow down the database for interactive demos.
func WithSimLatency(d time.Duration) Option {
	return func(e *Executor) { e.latency = d }
}

// New wraps a hidden database.
func New(db hidden.DB, opts ...Option) *Executor {
	e := &Executor{db: db, maxParallel: 8, parallel: true}
	for _, o := range opts {
		o(e)
	}
	return e
}

// DB returns the wrapped database.
func (e *Executor) DB() hidden.DB { return e.db }

// Parallel reports whether parallel execution is enabled.
func (e *Executor) Parallel() bool { return e.parallel }

// Search issues a single query (an iteration of size one).
func (e *Executor) Search(ctx context.Context, p relation.Predicate) (hidden.Result, error) {
	res, err := e.SearchBatch(ctx, []relation.Predicate{p})
	if err != nil {
		return hidden.Result{}, err
	}
	return res[0], nil
}

// SearchBatch issues one iteration of queries. With parallelism enabled the
// queries run concurrently (at most MaxParallel in flight) and the whole
// batch is charged the latency of its slowest wave; otherwise they run one
// by one. Results align with preds. The first error cancels the rest.
func (e *Executor) SearchBatch(ctx context.Context, preds []relation.Predicate) ([]hidden.Result, error) {
	if len(preds) == 0 {
		return nil, nil
	}
	results := make([]hidden.Result, len(preds))
	var err error
	if e.parallel && len(preds) > 1 {
		err = e.runParallel(ctx, preds, results)
	} else {
		for i, p := range preds {
			results[i], err = e.db.Search(ctx, p)
			if err != nil {
				break
			}
		}
	}
	e.record(len(preds))
	if err != nil {
		return nil, err
	}
	return results, nil
}

func (e *Executor) runParallel(ctx context.Context, preds []relation.Predicate, results []hidden.Result) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, e.maxParallel)
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for i := range preds {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				errMu.Lock()
				if firstErr == nil {
					firstErr = ctx.Err()
				}
				errMu.Unlock()
				return
			}
			res, err := e.db.Search(ctx, preds[i])
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				cancel()
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	return firstErr
}

// record books one iteration of n queries into the stats.
func (e *Executor) record(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := &e.stats
	s.Queries += int64(n)
	s.Batches++
	s.BatchSizes = append(s.BatchSizes, n)
	if n > s.MaxBatch {
		s.MaxBatch = n
	}
	if e.parallel && n > 1 {
		s.ParallelBatches++
		s.QueriesInParallel += int64(n)
		waves := (n + e.maxParallel - 1) / e.maxParallel
		s.SimElapsed += time.Duration(waves) * e.latency
	} else {
		s.SimElapsed += time.Duration(n) * e.latency
	}
}

// Stats returns a copy of the accumulated statistics.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := e.stats
	out.BatchSizes = append([]int(nil), e.stats.BatchSizes...)
	return out
}

// Reset clears the accumulated statistics.
func (e *Executor) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = Stats{}
}
