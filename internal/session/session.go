// Package session implements QR2's per-user session state.
//
// The paper's architecture (§II-A) keeps a session variable per connected
// user: a user-level cache of the tuples already "seen" while discovering
// the top-h of a query. The cache accelerates both the current query and
// subsequent get-next operations — every cached tuple matching the filter is
// a ready-made candidate that tightens the rank contour before any web
// database query is issued.
//
// Sessions also carry the open get-next cursors (reranked result streams)
// so that the web service's "get-next" button can resume them. Cursors are
// stored as opaque values to keep this package independent of the algorithm
// layer.
package session

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"repro/internal/relation"
)

// Session is one user's state. All methods are safe for concurrent use.
type Session struct {
	id string

	mu         sync.Mutex
	lastAccess time.Time
	// cache is keyed by source name, then tuple ID: one user session can
	// interleave queries against different sources, and their tuples live
	// in different schemas — matching a predicate from one source against
	// another source's tuples is meaningless at best (attribute indexes
	// out of range at worst), so each source gets its own sub-cache.
	cache   map[string]map[int64]relation.Tuple
	cursors map[string]any
}

// ID returns the session's identifier (the cookie value).
func (s *Session) ID() string { return s.id }

// Scoped returns a view of the session cache restricted to one source's
// tuples. It implements the algorithm layer's TupleCache, so a reranker
// seeded with Scoped(src) only ever sees tuples whose schema matches
// its predicates.
func (s *Session) Scoped(source string) ScopedCache {
	return ScopedCache{s: s, source: source}
}

// ScopedCache is one source's slice of a session cache.
type ScopedCache struct {
	s      *Session
	source string
}

// CacheTuples remembers tuples seen on behalf of this user for this
// source.
func (c ScopedCache) CacheTuples(ts ...relation.Tuple) {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	sub := c.s.cache[c.source]
	if sub == nil {
		sub = make(map[int64]relation.Tuple)
		c.s.cache[c.source] = sub
	}
	for _, t := range ts {
		sub[t.ID] = t
	}
}

// CachedMatching returns every cached tuple of this source satisfying p.
func (c ScopedCache) CachedMatching(p relation.Predicate) []relation.Tuple {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	var out []relation.Tuple
	for _, t := range c.s.cache[c.source] {
		if p.Match(t) {
			out = append(out, t)
		}
	}
	return out
}

// CacheTuples remembers tuples under the default (unnamed) source —
// the single-source embedding where no scoping is needed.
func (s *Session) CacheTuples(ts ...relation.Tuple) {
	s.Scoped("").CacheTuples(ts...)
}

// CachedMatching returns every default-source cached tuple satisfying p.
func (s *Session) CachedMatching(p relation.Predicate) []relation.Tuple {
	return s.Scoped("").CachedMatching(p)
}

// CacheSize returns the number of cached tuples across all sources.
func (s *Session) CacheSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, sub := range s.cache {
		n += len(sub)
	}
	return n
}

// Cursor returns the opaque cursor stored under key.
func (s *Session) Cursor(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.cursors[key]
	return v, ok
}

// SetCursor stores an opaque cursor under key.
func (s *Session) SetCursor(key string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cursors[key] = v
}

// DropCursor removes the cursor under key.
func (s *Session) DropCursor(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cursors, key)
}

// Manager tracks sessions with TTL-based expiry. The zero value is not
// usable; call NewManager.
type Manager struct {
	mu       sync.Mutex
	sessions map[string]*Session
	ttl      time.Duration
	maxCount int
	now      func() time.Time
}

// NewManager builds a session manager. Sessions idle for longer than ttl
// are removed by Sweep. maxCount bounds concurrent sessions (0 means 10000).
func NewManager(ttl time.Duration, maxCount int) *Manager {
	if maxCount <= 0 {
		maxCount = 10000
	}
	return &Manager{
		sessions: make(map[string]*Session),
		ttl:      ttl,
		maxCount: maxCount,
		now:      time.Now,
	}
}

// SetClock overrides the manager's time source for tests.
func (m *Manager) SetClock(now func() time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = now
}

// New creates a fresh session with a cryptographically random identifier.
func (m *Manager) New() (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.sessions) >= m.maxCount {
		m.sweepLocked()
		if len(m.sessions) >= m.maxCount {
			return nil, fmt.Errorf("session: limit of %d concurrent sessions reached", m.maxCount)
		}
	}
	raw := make([]byte, 16)
	if _, err := rand.Read(raw); err != nil {
		return nil, fmt.Errorf("session: generate id: %w", err)
	}
	s := &Session{
		id:         hex.EncodeToString(raw),
		lastAccess: m.now(),
		cache:      make(map[string]map[int64]relation.Tuple),
		cursors:    make(map[string]any),
	}
	m.sessions[s.id] = s
	return s, nil
}

// Get returns the session with the given id and refreshes its idle timer.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, false
	}
	if m.ttl > 0 && m.now().Sub(s.lastAccess) > m.ttl {
		delete(m.sessions, id)
		return nil, false
	}
	s.mu.Lock()
	s.lastAccess = m.now()
	s.mu.Unlock()
	return s, true
}

// GetOrNew returns the session for id, or a fresh one when id is unknown,
// empty or expired.
func (m *Manager) GetOrNew(id string) (*Session, error) {
	if id != "" {
		if s, ok := m.Get(id); ok {
			return s, nil
		}
	}
	return m.New()
}

// Sweep removes expired sessions and returns how many were dropped.
func (m *Manager) Sweep() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweepLocked()
}

func (m *Manager) sweepLocked() int {
	if m.ttl <= 0 {
		return 0
	}
	cutoff := m.now().Add(-m.ttl)
	dropped := 0
	for id, s := range m.sessions {
		s.mu.Lock()
		idle := s.lastAccess.Before(cutoff)
		s.mu.Unlock()
		if idle {
			delete(m.sessions, id)
			dropped++
		}
	}
	return dropped
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}
