package session

import (
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
)

func TestNewSessionsHaveUniqueIDs(t *testing.T) {
	m := NewManager(time.Hour, 0)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		s, err := m.New()
		if err != nil {
			t.Fatal(err)
		}
		if seen[s.ID()] {
			t.Fatal("duplicate session id")
		}
		seen[s.ID()] = true
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestGetRefreshesAndExpires(t *testing.T) {
	m := NewManager(10*time.Minute, 0)
	clock := time.Unix(1000, 0)
	m.SetClock(func() time.Time { return clock })
	s, err := m.New()
	if err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(9 * time.Minute)
	if _, ok := m.Get(s.ID()); !ok {
		t.Fatal("session expired too early")
	}
	// The Get refreshed the timer: another 9 minutes is still fine.
	clock = clock.Add(9 * time.Minute)
	if _, ok := m.Get(s.ID()); !ok {
		t.Fatal("Get did not refresh idle timer")
	}
	clock = clock.Add(11 * time.Minute)
	if _, ok := m.Get(s.ID()); ok {
		t.Fatal("expired session still retrievable")
	}
	if _, ok := m.Get("bogus"); ok {
		t.Fatal("unknown id retrievable")
	}
}

func TestGetOrNew(t *testing.T) {
	m := NewManager(time.Hour, 0)
	s1, err := m.GetOrNew("")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.GetOrNew(s1.ID())
	if err != nil {
		t.Fatal(err)
	}
	if s2.ID() != s1.ID() {
		t.Fatal("GetOrNew did not return existing session")
	}
	s3, err := m.GetOrNew("unknown")
	if err != nil {
		t.Fatal(err)
	}
	if s3.ID() == s1.ID() {
		t.Fatal("GetOrNew returned wrong session")
	}
}

func TestSweep(t *testing.T) {
	m := NewManager(time.Minute, 0)
	clock := time.Unix(0, 0)
	m.SetClock(func() time.Time { return clock })
	for i := 0; i < 5; i++ {
		if _, err := m.New(); err != nil {
			t.Fatal(err)
		}
	}
	clock = clock.Add(2 * time.Minute)
	late, err := m.New()
	if err != nil {
		t.Fatal(err)
	}
	if n := m.Sweep(); n != 5 {
		t.Fatalf("Sweep dropped %d, want 5", n)
	}
	if _, ok := m.Get(late.ID()); !ok {
		t.Fatal("fresh session swept")
	}
}

func TestSessionLimitWithSweepRecovery(t *testing.T) {
	m := NewManager(time.Minute, 3)
	clock := time.Unix(0, 0)
	m.SetClock(func() time.Time { return clock })
	for i := 0; i < 3; i++ {
		if _, err := m.New(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.New(); err == nil {
		t.Fatal("limit not enforced")
	}
	// Once the old sessions expire, New succeeds again via implicit sweep.
	clock = clock.Add(2 * time.Minute)
	if _, err := m.New(); err != nil {
		t.Fatalf("New after expiry: %v", err)
	}
}

func TestCache(t *testing.T) {
	m := NewManager(time.Hour, 0)
	s, _ := m.New()
	s.CacheTuples(
		relation.Tuple{ID: 1, Values: []float64{10}},
		relation.Tuple{ID: 2, Values: []float64{20}},
		relation.Tuple{ID: 3, Values: []float64{30}},
	)
	// Re-caching the same tuple does not duplicate.
	s.CacheTuples(relation.Tuple{ID: 2, Values: []float64{20}})
	if s.CacheSize() != 3 {
		t.Fatalf("CacheSize = %d", s.CacheSize())
	}
	got := s.CachedMatching(relation.Predicate{}.WithInterval(0, relation.Closed(15, 35)))
	if len(got) != 2 {
		t.Fatalf("CachedMatching returned %d", len(got))
	}
}

func TestCursors(t *testing.T) {
	m := NewManager(time.Hour, 0)
	s, _ := m.New()
	if _, ok := s.Cursor("q1"); ok {
		t.Fatal("cursor on fresh session")
	}
	s.SetCursor("q1", 42)
	v, ok := s.Cursor("q1")
	if !ok || v.(int) != 42 {
		t.Fatalf("Cursor = %v, %v", v, ok)
	}
	s.DropCursor("q1")
	if _, ok := s.Cursor("q1"); ok {
		t.Fatal("dropped cursor still present")
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := NewManager(time.Hour, 0)
	s, _ := m.New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.CacheTuples(relation.Tuple{ID: int64(g*1000 + i), Values: []float64{float64(i)}})
				_ = s.CachedMatching(relation.Predicate{})
				_, _ = m.Get(s.ID())
			}
		}(g)
	}
	wg.Wait()
	if s.CacheSize() != 8*200 {
		t.Fatalf("CacheSize = %d", s.CacheSize())
	}
}

// TestScopedCacheIsolatesSources is the regression test for the
// cross-source panic: one session interleaving queries over different
// schemas must never offer one source's tuples as candidates for
// another source's predicate (whose attribute indexes may not even
// exist in those tuples).
func TestScopedCacheIsolatesSources(t *testing.T) {
	m := NewManager(0, 0)
	s, err := m.New()
	if err != nil {
		t.Fatal(err)
	}
	diamonds := s.Scoped("diamonds")
	homes := s.Scoped("homes")
	diamonds.CacheTuples(relation.Tuple{ID: 1, Values: []float64{10, 20}})
	homes.CacheTuples(relation.Tuple{ID: 1, Values: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}})

	// A predicate on attribute 8 is valid for homes, out of range for
	// the diamonds tuples — which scoping keeps it away from.
	p := relation.Predicate{}.WithInterval(8, relation.Closed(0, 100))
	if got := len(homes.CachedMatching(p)); got != 1 {
		t.Fatalf("homes matched %d tuples, want 1", got)
	}
	if got := len(diamonds.CachedMatching(relation.Predicate{})); got != 1 {
		t.Fatalf("diamonds holds %d tuples, want 1", got)
	}
	// Same tuple ID in both scopes must not collide.
	if s.CacheSize() != 2 {
		t.Fatalf("CacheSize = %d, want 2", s.CacheSize())
	}
	// The unscoped methods are the "" scope.
	s.CacheTuples(relation.Tuple{ID: 7, Values: []float64{1}})
	if got := len(s.CachedMatching(relation.Predicate{})); got != 1 {
		t.Fatalf("default scope matched %d, want 1", got)
	}
}
