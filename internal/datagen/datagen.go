// Package datagen builds the synthetic web-database catalogs used throughout
// the QR2 reproduction.
//
// The paper demonstrates QR2 against the live Blue Nile (diamonds) and Zillow
// (real estate) search sites. Those sites cannot be queried here, so this
// package generates catalogs with the statistical features the paper's
// evaluation depends on:
//
//   - realistic correlated attributes (diamond price grows super-linearly
//     with carat; house price correlates positively with square feet, which
//     is exactly what makes the paper's "best case" query fast);
//   - a large tie group: about 20% of diamonds share LengthWidthRatio = 1.00,
//     the paper's "worst case" that forces tie-group crawling;
//   - dense value regions (depth and table cluster tightly around their
//     ideal cuts), which is what the on-the-fly dense-region index targets;
//   - a proprietary system ranking function that the reranking algorithms
//     never see — they interact with it only through the top-k interface.
//
// All generators are deterministic for a given (n, seed).
package datagen

import (
	"math"
	"math/rand"

	"repro/internal/relation"
)

// Catalog bundles a generated relation with its hidden system ranking.
// The ranking is handed to the hidden-database simulator and must never be
// consulted by the reranking algorithms themselves.
type Catalog struct {
	// Rel is the generated table.
	Rel *relation.Relation
	// Rank is the proprietary system ranking: lower scores are returned
	// first by the web database.
	Rank func(relation.Tuple) float64
	// Name identifies the catalog ("bluenile", "zillow", ...).
	Name string
}

// noise returns a deterministic pseudo-random value in [0, 1) derived from a
// tuple ID, used to give system rankings a proprietary, irregular component.
func noise(id int64) float64 {
	x := uint64(id)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// roundTo rounds v to a multiple of step (step > 0).
func roundTo(v, step float64) float64 {
	return math.Round(v/step) * step
}

// BlueNile generates a diamonds catalog modelled on the Blue Nile search
// form: price, carat, depth %, table %, length/width ratio, and the
// categorical cut/color/clarity/shape attributes.
//
// Roughly 20% of stones get LengthWidthRatio exactly 1.00 (round brilliants
// are cut to equal length and width), reproducing the tie mass the paper
// reports ("around 20% of the tuples satisfy this predicate").
func BlueNile(n int, seed int64) *Catalog {
	schema := relation.MustSchema(
		relation.Attribute{Name: "price", Kind: relation.Numeric, Min: 200, Max: 250000, Resolution: 1},
		relation.Attribute{Name: "carat", Kind: relation.Numeric, Min: 0.23, Max: 6, Resolution: 0.01},
		relation.Attribute{Name: "depth", Kind: relation.Numeric, Min: 50, Max: 75, Resolution: 0.1},
		relation.Attribute{Name: "table", Kind: relation.Numeric, Min: 45, Max: 80, Resolution: 0.1},
		relation.Attribute{Name: "lwratio", Kind: relation.Numeric, Min: 0.75, Max: 2.75, Resolution: 0.01},
		relation.Attribute{Name: "cut", Kind: relation.Categorical,
			Categories: []string{"Fair", "Good", "Very Good", "Ideal", "Astor Ideal"}},
		relation.Attribute{Name: "color", Kind: relation.Categorical,
			Categories: []string{"D", "E", "F", "G", "H", "I", "J", "K"}},
		relation.Attribute{Name: "clarity", Kind: relation.Categorical,
			Categories: []string{"FL", "IF", "VVS1", "VVS2", "VS1", "VS2", "SI1", "SI2"}},
		relation.Attribute{Name: "shape", Kind: relation.Categorical,
			Categories: []string{"Round", "Princess", "Emerald", "Asscher", "Cushion", "Marquise", "Radiant", "Oval", "Pear", "Heart"}},
	)
	r := rand.New(rand.NewSource(seed))
	rel := relation.NewRelation("bluenile", schema)
	for i := 0; i < n; i++ {
		carat := clamp(math.Exp(r.NormFloat64()*0.55-0.3), 0.23, 6)
		carat = roundTo(carat, 0.01)
		cut := weightedCat(r, []float64{0.06, 0.16, 0.30, 0.40, 0.08})
		color := r.Intn(8)
		clarity := weightedCat(r, []float64{0.01, 0.04, 0.08, 0.12, 0.20, 0.25, 0.18, 0.12})
		shape := weightedCat(r, []float64{0.45, 0.09, 0.07, 0.04, 0.08, 0.05, 0.05, 0.09, 0.05, 0.03})

		// Price: log-linear in carat with quality premiums and noise.
		logp := 6.1 + 1.9*math.Log(carat) +
			0.09*float64(cut) + 0.07*float64(7-color) + 0.08*float64(7-clarity) +
			r.NormFloat64()*0.28
		price := clamp(math.Exp(logp), 200, 250000)
		price = roundTo(price, 1)

		// Depth and table cluster tightly around the ideal cut values —
		// these are the dense regions the RERANK oracle indexes.
		depth := clamp(61.8+r.NormFloat64()*1.4, 50, 75)
		depth = roundTo(depth, 0.1)
		table := clamp(57.0+r.NormFloat64()*2.2, 45, 80)
		table = roundTo(table, 0.1)

		// Length/width ratio: round stones are exactly 1.00 (the paper's
		// worst-case tie group); fancy shapes spread up to 2.75.
		var lw float64
		if shape == 0 || r.Float64() < 0.08 {
			lw = 1.00
		} else {
			lw = clamp(1.0+math.Abs(r.NormFloat64())*0.45, 0.75, 2.75)
			lw = roundTo(lw, 0.01)
		}

		rel.MustAppend(relation.Tuple{
			ID: int64(i + 1),
			Values: []float64{price, carat, depth, table, lw,
				float64(cut), float64(color), float64(clarity), float64(shape)},
		})
	}
	priceIdx, _ := schema.Lookup("price")
	caratIdx, _ := schema.Lookup("carat")
	cutIdx, _ := schema.Lookup("cut")
	logLo, logHi := math.Log(200), math.Log(250000)
	rank := func(t relation.Tuple) float64 {
		// Proprietary "featured" order: cheap first, nudged by carat and
		// cut quality, plus an irregular editorial component. Price enters
		// on a log scale so its influence survives the long price tail.
		p := (math.Log(t.Values[priceIdx]) - logLo) / (logHi - logLo)
		c := (t.Values[caratIdx] - 0.23) / (6 - 0.23)
		q := t.Values[cutIdx] / 4
		return 0.75*p - 0.1*c - 0.06*q + 0.04*noise(t.ID)
	}
	return &Catalog{Rel: rel, Rank: rank, Name: "bluenile"}
}

// Zillow generates a housing catalog modelled on the Zillow search form:
// price, square feet, bedrooms, bathrooms, year built, lot size, and
// categorical zip code and home type. Price and square feet are positively
// correlated — the property behind the paper's "best case" query
// price + squarefeet.
func Zillow(n int, seed int64) *Catalog {
	zips := make([]string, 25)
	for i := range zips {
		zips[i] = formatZip(76000 + i*7)
	}
	schema := relation.MustSchema(
		relation.Attribute{Name: "price", Kind: relation.Numeric, Min: 40000, Max: 5000000, Resolution: 100},
		relation.Attribute{Name: "sqft", Kind: relation.Numeric, Min: 300, Max: 12000, Resolution: 1},
		relation.Attribute{Name: "beds", Kind: relation.Numeric, Min: 0, Max: 10, Resolution: 1},
		relation.Attribute{Name: "baths", Kind: relation.Numeric, Min: 1, Max: 9, Resolution: 0.5},
		relation.Attribute{Name: "year", Kind: relation.Numeric, Min: 1900, Max: 2018, Resolution: 1},
		relation.Attribute{Name: "lot", Kind: relation.Numeric, Min: 400, Max: 200000, Resolution: 10},
		relation.Attribute{Name: "zip", Kind: relation.Categorical, Categories: zips},
		relation.Attribute{Name: "type", Kind: relation.Categorical,
			Categories: []string{"House", "Condo", "Townhouse", "Apartment"}},
	)
	r := rand.New(rand.NewSource(seed))
	rel := relation.NewRelation("zillow", schema)
	for i := 0; i < n; i++ {
		// Latent size factor drives both sqft and price (ρ ≈ +0.8).
		z := r.NormFloat64()
		sqft := clamp(1700*math.Exp(0.45*z+0.12*r.NormFloat64()), 300, 12000)
		sqft = roundTo(sqft, 1)
		price := clamp(220000*math.Exp(0.55*z+0.30*r.NormFloat64()), 40000, 5000000)
		price = roundTo(price, 100)
		beds := clamp(math.Round(1.2+sqft/900+r.NormFloat64()*0.8), 0, 10)
		baths := clamp(roundTo(1+sqft/1500+r.NormFloat64()*0.5, 0.5), 1, 9)
		year := clamp(math.Round(1985+r.NormFloat64()*22), 1900, 2018)
		lot := clamp(7000*math.Exp(0.8*r.NormFloat64()), 400, 200000)
		lot = roundTo(lot, 10)
		zip := r.Intn(len(zips))
		typ := weightedCat(r, []float64{0.62, 0.18, 0.12, 0.08})
		rel.MustAppend(relation.Tuple{
			ID:     int64(i + 1),
			Values: []float64{price, sqft, beds, baths, year, lot, float64(zip), float64(typ)},
		})
	}
	priceIdx, _ := schema.Lookup("price")
	yearIdx, _ := schema.Lookup("year")
	sqftIdx, _ := schema.Lookup("sqft")
	logLo, logHi := math.Log(40000), math.Log(5000000)
	rank := func(t relation.Tuple) float64 {
		// Proprietary "Homes for You" order: affordable, recent and roomy
		// first, with an irregular relevance component. Price enters on a
		// log scale, as listing relevance scores do in practice —
		// otherwise the long price tail would mute its influence.
		p := (math.Log(t.Values[priceIdx]) - logLo) / (logHi - logLo)
		y := (t.Values[yearIdx] - 1900) / (2018 - 1900)
		s := (t.Values[sqftIdx] - 300) / (12000 - 300)
		return 0.6*p - 0.15*y - 0.1*s + 0.08*noise(t.ID)
	}
	return &Catalog{Rel: rel, Rank: rank, Name: "zillow"}
}

// Uniform generates attrs numeric attributes drawn uniformly from [0, 1000]
// at resolution 0.01, with a system ranking independent of every attribute.
// It is the neutral fixture for property-based correctness tests.
func Uniform(n, attrs int, seed int64) *Catalog {
	specs := make([]relation.Attribute, attrs)
	for i := range specs {
		specs[i] = relation.Attribute{
			Name: "a" + string(rune('0'+i)), Kind: relation.Numeric,
			Min: 0, Max: 1000, Resolution: 0.01,
		}
	}
	schema := relation.MustSchema(specs...)
	r := rand.New(rand.NewSource(seed))
	rel := relation.NewRelation("uniform", schema)
	for i := 0; i < n; i++ {
		vals := make([]float64, attrs)
		for j := range vals {
			vals[j] = roundTo(r.Float64()*1000, 0.01)
		}
		rel.MustAppend(relation.Tuple{ID: int64(i + 1), Values: vals})
	}
	rank := func(t relation.Tuple) float64 { return noise(t.ID) }
	return &Catalog{Rel: rel, Rank: rank, Name: "uniform"}
}

// Clustered generates attrs numeric attributes where a fraction of tuples
// concentrate inside a few tight Gaussian clusters — the dense-region
// stress case for the BINARY algorithms.
func Clustered(n, attrs, clusters int, seed int64) *Catalog {
	specs := make([]relation.Attribute, attrs)
	for i := range specs {
		specs[i] = relation.Attribute{
			Name: "a" + string(rune('0'+i)), Kind: relation.Numeric,
			Min: 0, Max: 1000, Resolution: 0.01,
		}
	}
	schema := relation.MustSchema(specs...)
	r := rand.New(rand.NewSource(seed))
	centers := make([][]float64, clusters)
	for c := range centers {
		centers[c] = make([]float64, attrs)
		for j := range centers[c] {
			centers[c][j] = 100 + r.Float64()*800
		}
	}
	rel := relation.NewRelation("clustered", schema)
	for i := 0; i < n; i++ {
		vals := make([]float64, attrs)
		if r.Float64() < 0.7 {
			c := centers[r.Intn(clusters)]
			for j := range vals {
				vals[j] = roundTo(clamp(c[j]+r.NormFloat64()*2.0, 0, 1000), 0.01)
			}
		} else {
			for j := range vals {
				vals[j] = roundTo(r.Float64()*1000, 0.01)
			}
		}
		rel.MustAppend(relation.Tuple{ID: int64(i + 1), Values: vals})
	}
	rank := func(t relation.Tuple) float64 { return noise(t.ID) }
	return &Catalog{Rel: rel, Rank: rank, Name: "clustered"}
}

// TieHeavy generates a two-attribute catalog where tieFrac of the tuples
// share the exact value 500 on attribute "tied" — the general-positioning
// stress case that exercises the crawler.
func TieHeavy(n int, tieFrac float64, seed int64) *Catalog {
	schema := relation.MustSchema(
		relation.Attribute{Name: "tied", Kind: relation.Numeric, Min: 0, Max: 1000, Resolution: 0.01},
		relation.Attribute{Name: "free", Kind: relation.Numeric, Min: 0, Max: 1000, Resolution: 0.01},
	)
	r := rand.New(rand.NewSource(seed))
	rel := relation.NewRelation("tieheavy", schema)
	for i := 0; i < n; i++ {
		tied := roundTo(r.Float64()*1000, 0.01)
		if r.Float64() < tieFrac {
			tied = 500
		}
		free := roundTo(r.Float64()*1000, 0.01)
		rel.MustAppend(relation.Tuple{ID: int64(i + 1), Values: []float64{tied, free}})
	}
	rank := func(t relation.Tuple) float64 { return noise(t.ID) }
	return &Catalog{Rel: rel, Rank: rank, Name: "tieheavy"}
}

// weightedCat draws a category index with the given probability weights.
func weightedCat(r *rand.Rand, weights []float64) int {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	x := r.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

func formatZip(z int) string {
	digits := [5]byte{}
	for i := 4; i >= 0; i-- {
		digits[i] = byte('0' + z%10)
		z /= 10
	}
	return string(digits[:])
}
