package datagen

import (
	"math"
	"testing"

	"repro/internal/relation"
)

func TestBlueNileShape(t *testing.T) {
	c := BlueNile(5000, 1)
	if c.Rel.Len() != 5000 {
		t.Fatalf("Len = %d", c.Rel.Len())
	}
	s := c.Rel.Schema()
	lwIdx, ok := s.Lookup("lwratio")
	if !ok {
		t.Fatal("no lwratio attribute")
	}
	ties := 0
	c.Rel.Scan(func(tu relation.Tuple) bool {
		if tu.Values[lwIdx] == 1.00 {
			ties++
		}
		return true
	})
	frac := float64(ties) / 5000
	if frac < 0.30 || frac > 0.65 {
		t.Errorf("lwratio=1.00 tie fraction = %.2f, want a substantial tie mass", frac)
	}
	// Domain sanity: every value within the declared attribute domain.
	for i := 0; i < s.Len(); i++ {
		a := s.Attr(i)
		if a.Kind != relation.Numeric {
			continue
		}
		c.Rel.Scan(func(tu relation.Tuple) bool {
			v := tu.Values[i]
			if v < a.Min || v > a.Max {
				t.Fatalf("attr %s value %v outside [%v, %v]", a.Name, v, a.Min, a.Max)
			}
			return true
		})
	}
}

func TestBlueNileTieMassMatchesPaperWhenFiltered(t *testing.T) {
	// The paper reports ~20% of all tuples at lwratio = 1. Our generator
	// assigns 1.00 to round stones (45% of catalog) plus 8% of the rest;
	// verify there is a dominating point mass at exactly 1.00 versus any
	// other single value.
	c := BlueNile(4000, 3)
	s := c.Rel.Schema()
	lwIdx, _ := s.Lookup("lwratio")
	counts := map[float64]int{}
	c.Rel.Scan(func(tu relation.Tuple) bool {
		counts[tu.Values[lwIdx]]++
		return true
	})
	best, bestV := 0, 0.0
	for v, n := range counts {
		if n > best {
			best, bestV = n, v
		}
	}
	if bestV != 1.00 {
		t.Fatalf("largest tie group at %v, want 1.00", bestV)
	}
	if best < c.Rel.Len()/5 {
		t.Fatalf("tie group has %d tuples, want >= 20%% of %d", best, c.Rel.Len())
	}
}

func TestZillowCorrelation(t *testing.T) {
	c := Zillow(5000, 2)
	s := c.Rel.Schema()
	pIdx, _ := s.Lookup("price")
	sIdx, _ := s.Lookup("sqft")
	var xs, ys []float64
	c.Rel.Scan(func(tu relation.Tuple) bool {
		xs = append(xs, math.Log(tu.Values[pIdx]))
		ys = append(ys, math.Log(tu.Values[sIdx]))
		return true
	})
	r := pearson(xs, ys)
	if r < 0.5 {
		t.Errorf("price/sqft correlation = %.2f, want strongly positive", r)
	}
}

func TestDeterminism(t *testing.T) {
	a := BlueNile(200, 42)
	b := BlueNile(200, 42)
	for i := 0; i < a.Rel.Len(); i++ {
		ta, tb := a.Rel.Tuple(i), b.Rel.Tuple(i)
		if ta.ID != tb.ID {
			t.Fatal("IDs differ across runs with same seed")
		}
		for j := range ta.Values {
			if ta.Values[j] != tb.Values[j] {
				t.Fatalf("tuple %d attr %d differs: %v vs %v", i, j, ta.Values[j], tb.Values[j])
			}
		}
	}
	cDiff := BlueNile(200, 43)
	same := true
	for i := 0; i < a.Rel.Len() && same; i++ {
		for j, v := range a.Rel.Tuple(i).Values {
			if v != cDiff.Rel.Tuple(i).Values[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical catalogs")
	}
}

func TestSystemRankDeterministic(t *testing.T) {
	c := Zillow(100, 9)
	tu := c.Rel.Tuple(10)
	if c.Rank(tu) != c.Rank(tu) {
		t.Fatal("system rank not deterministic")
	}
	// Ranking must give distinct scores to almost all tuples.
	seen := map[float64]bool{}
	dups := 0
	c.Rel.Scan(func(tu relation.Tuple) bool {
		s := c.Rank(tu)
		if seen[s] {
			dups++
		}
		seen[s] = true
		return true
	})
	if dups > 2 {
		t.Fatalf("%d duplicate system scores in 100 tuples", dups)
	}
}

func TestUniformCatalog(t *testing.T) {
	c := Uniform(1000, 3, 5)
	if c.Rel.Schema().Len() != 3 {
		t.Fatalf("attrs = %d", c.Rel.Schema().Len())
	}
	var sum float64
	c.Rel.Scan(func(tu relation.Tuple) bool {
		for _, v := range tu.Values {
			if v < 0 || v > 1000 {
				t.Fatalf("value %v out of domain", v)
			}
			sum += v
		}
		return true
	})
	mean := sum / (1000 * 3)
	if mean < 400 || mean > 600 {
		t.Errorf("mean = %v, want near 500", mean)
	}
}

func TestClusteredHasDenseRegions(t *testing.T) {
	c := Clustered(5000, 2, 3, 7)
	// At least one narrow 2-unit window should hold far more than the
	// uniform expectation (~10 tuples per 2/1000 of 5000·0.3 background).
	counts := map[int]int{}
	c.Rel.Scan(func(tu relation.Tuple) bool {
		counts[int(tu.Values[0]/2)]++
		return true
	})
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < 200 {
		t.Errorf("densest 2-unit bucket holds %d tuples, want clustered mass", max)
	}
}

func TestTieHeavyFraction(t *testing.T) {
	c := TieHeavy(4000, 0.3, 11)
	ties := 0
	c.Rel.Scan(func(tu relation.Tuple) bool {
		if tu.Values[0] == 500 {
			ties++
		}
		return true
	})
	frac := float64(ties) / 4000
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("tie fraction = %.3f, want ~0.30", frac)
	}
}

func TestNoiseRange(t *testing.T) {
	for id := int64(0); id < 10000; id++ {
		v := noise(id)
		if v < 0 || v >= 1 {
			t.Fatalf("noise(%d) = %v out of [0,1)", id, v)
		}
	}
	if noise(1) == noise(2) {
		t.Fatal("noise constant across ids")
	}
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	return cov / math.Sqrt(vx*vy)
}
