package qcache

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/epoch"
	"repro/internal/hidden"
	"repro/internal/region"
	"repro/internal/relation"
)

// benchFill warms nPreds disjoint complete answers into db.
func benchFill(b *testing.B, db hidden.DB, nPreds int) {
	b.Helper()
	ctx := context.Background()
	for i := 0; i < nPreds; i++ {
		lo := float64(i * 50)
		if _, err := db.Search(ctx, pricePred(lo, lo+30)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheHit is the exact-hit fast path of a stand-alone cache:
// the baseline every pool number compares against.
func BenchmarkCacheHit(b *testing.B) {
	c, err := New(testDB(b, 2000, 20), Config{})
	if err != nil {
		b.Fatal(err)
	}
	benchFill(b, c, 16)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			lo := float64((i % 16) * 50)
			if _, err := c.Search(ctx, pricePred(lo, lo+30)); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkPoolHit measures the same exact-hit path through a pool shared
// by four namespaces, with every worker spreading traffic across all of
// them — the cross-source contention case the pool is built for.
func BenchmarkPoolHit(b *testing.B) {
	pool := NewPool(PoolConfig{})
	const sources = 4
	caches := make([]*Cache, sources)
	for s := 0; s < sources; s++ {
		c, err := pool.Namespace(fmt.Sprintf("src%d", s), testDB(b, 2000, 20), Config{})
		if err != nil {
			b.Fatal(err)
		}
		benchFill(b, c, 16)
		caches[s] = c
	}
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			lo := float64((i % 16) * 50)
			if _, err := caches[i%sources].Search(ctx, pricePred(lo, lo+30)); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkPoolContainmentHit measures overflow-aware reuse through the
// pool: every lookup misses its exact key and is assembled client-side
// from a broader complete answer, including the post-hit LRU refresh.
func BenchmarkPoolContainmentHit(b *testing.B) {
	pool := NewPool(PoolConfig{})
	c, err := pool.Namespace("src", testDB(b, 2000, 40), Config{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		lo := float64(i * 100)
		if res, err := c.Search(ctx, pricePred(lo, lo+30)); err != nil || res.Overflow {
			b.Fatalf("broad fill %d: %v overflow=%v", i, err, res.Overflow)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			lo := float64((i%8)*100) + 5 + float64(i%17)
			if _, err := c.Search(ctx, pricePred(lo, lo+3)); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkPoolEvictionChurn measures the write path under global budget
// pressure: every search misses, admits a fresh answer and evicts a cold
// one, with the floor-aware victim walk engaged across two namespaces.
// The inner (simulated) database query is part of each op — this is the
// full miss-path cost, not the bookkeeping alone.
func BenchmarkPoolEvictionChurn(b *testing.B) {
	pool := NewPool(PoolConfig{MaxBytes: 32 << 10, Shards: 4})
	a, err := pool.Namespace("a", testDB(b, 2000, 20), Config{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := pool.Namespace("b", testDB(b, 100, 20), Config{}); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := float64((i * 37) % 1900)
		if _, err := a.Search(ctx, pricePred(lo, lo+25)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRegionFill admits 1000 half-unit entries spread over price
// [0,1000) directly (no inner queries), so the wipe benchmarks price the
// wipe alone.
func benchRegionFill(b *testing.B, c *Cache) {
	b.Helper()
	res := hidden.Result{Tuples: []relation.Tuple{{ID: 1, Values: []float64{1, 0}}}}
	for j := 0; j < 1000; j++ {
		c.Admit(pricePred(float64(j), float64(j)+0.5), res)
	}
}

// BenchmarkRegionWipe1k prices one region-scoped bump over a namespace
// holding 1k resident entries: every entry pays the key-decoded
// rect-intersection check, the intersecting half is dropped and the
// disjoint half survives — the selective wipe BENCH_epoch.json records
// against BenchmarkFullWipe1k.
func BenchmarkRegionWipe1k(b *testing.B) {
	reg := epoch.NewRegistry()
	c, err := New(testDB(b, 2000, 20), Config{Epochs: reg})
	if err != nil {
		b.Fatal(err)
	}
	rect := region.MustNew([]int{0}, []relation.Interval{relation.Closed(0, 500)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		benchRegionFill(b, c)
		b.StartTimer()
		reg.BumpRegion(c.Name(), rect)
	}
}

// BenchmarkFullWipe1k prices the unscoped bump over the same 1k-entry
// namespace: no per-entry checks, everything dropped wholesale.
func BenchmarkFullWipe1k(b *testing.B) {
	reg := epoch.NewRegistry()
	c, err := New(testDB(b, 2000, 20), Config{Epochs: reg})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		benchRegionFill(b, c)
		b.StartTimer()
		reg.Bump(c.Name())
	}
}
