package qcache

import (
	"encoding/binary"
	"math"
	"sync"
	"time"

	"repro/internal/hidden"
	"repro/internal/region"
	"repro/internal/relation"
)

// Overflow-aware answer reuse. A cached result with Overflow=false is the
// complete match set of its predicate: the web database returned every
// tuple satisfying it, in system-rank order. Such an answer can serve not
// just the identical predicate but any strictly narrower one — filtering
// the complete set client-side yields exactly the tuples, in exactly the
// order, the database would return, with Overflow necessarily false again.
// This includes the negative result: a complete empty answer proves every
// narrower predicate empty too.
//
// completeDir is the containment directory over complete answers — the
// answer-granularity analogue of the dense-region index, including its
// pruning idea: entries are grouped by the attribute signature their
// predicate constrains. Canonical keys never contain full-interval
// conditions, so a predicate p can only cover q when every attribute p
// constrains is constrained by q too; a lookup therefore skips every group
// whose signature is not a subset of the query's attribute set. It is
// keyed by the canonical predicate key and consulted after an exact-key
// miss; entries enter when a complete answer is admitted to a shard and
// leave when that shard evicts or replaces it.

// completeEntry is one complete answer available for containment reuse.
type completeEntry struct {
	key      string
	pred     relation.Predicate
	res      hidden.Result
	storedAt time.Time
	// idOrder marks a crawl-admitted region set: the tuples are the
	// complete match set but in tuple-ID order, because the global system
	// rank of an overflowing region is unobservable through the top-k
	// interface. Such an entry serves a narrower predicate only when the
	// filtered set fits under system-k (no truncation to emulate), and
	// rank-faithful entries are always preferred over it.
	idOrder bool
}

// completeGroup holds the complete answers sharing one attribute
// signature.
type completeGroup struct {
	attrs   []int // ascending attribute positions the predicates constrain
	entries map[string]completeEntry
}

// completeDir indexes complete answers for containment lookups. Its lock
// is ordered after the shard locks: shards register and unregister while
// holding their own mutex; lookups take only the directory lock.
type completeDir struct {
	mu     sync.RWMutex
	groups map[string]*completeGroup // signature -> group
	sigs   map[string]string         // entry key -> signature
	crawl  int                       // how many registered entries are crawl sets
}

func newCompleteDir() *completeDir {
	return &completeDir{
		groups: make(map[string]*completeGroup),
		sigs:   make(map[string]string),
	}
}

// condAttrs returns the ascending attribute positions p constrains.
func condAttrs(p relation.Predicate) []int {
	conds := p.Conditions()
	out := make([]int, len(conds))
	for i, c := range conds {
		out[i] = c.Attr
	}
	return out
}

// sigOf encodes an attribute set as a map key.
func sigOf(attrs []int) string {
	buf := make([]byte, 0, 4*len(attrs))
	for _, a := range attrs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(a))
	}
	return string(buf)
}

// subsetInts reports whether every element of a occurs in b (both sorted
// ascending).
func subsetInts(a, b []int) bool {
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j == len(b) || b[j] != v {
			return false
		}
	}
	return true
}

// register records a complete answer under its key: the canonical
// predicate key for a real query answer, or the 'R'-marked key of a
// crawl-admitted region set. Overflowing answers are ignored: a truncated
// match set answers nothing but itself.
func (d *completeDir) register(key string, res hidden.Result, at time.Time) {
	if res.Overflow {
		return
	}
	ck, idOrder := key, false
	if isCrawlKey(key) {
		ck, idOrder = key[len(crawlKeyPrefix):], true
	}
	pred, ok := PredicateOfKey(ck)
	if !ok {
		return
	}
	attrs := condAttrs(pred)
	sig := sigOf(attrs)
	d.mu.Lock()
	g, ok := d.groups[sig]
	if !ok {
		g = &completeGroup{attrs: attrs, entries: make(map[string]completeEntry)}
		d.groups[sig] = g
	}
	if prev, ok := g.entries[key]; ok && prev.idOrder {
		d.crawl--
	}
	g.entries[key] = completeEntry{key: key, pred: pred, res: res, storedAt: at, idOrder: idOrder}
	d.sigs[key] = sig
	if idOrder {
		d.crawl++
	}
	d.mu.Unlock()
}

// unregister drops the record for key, if any.
func (d *completeDir) unregister(key string) {
	d.mu.Lock()
	if sig, ok := d.sigs[key]; ok {
		delete(d.sigs, key)
		if g, ok := d.groups[sig]; ok {
			if e, ok := g.entries[key]; ok && e.idOrder {
				d.crawl--
			}
			delete(g.entries, key)
			if len(g.entries) == 0 {
				delete(d.groups, sig)
			}
		}
	}
	d.mu.Unlock()
}

// lookup finds a complete answer whose predicate covers p and assembles
// the narrower result client-side, reporting the winning entry's key so
// the caller can refresh its LRU position — the complete answer serving
// the most traffic must not be evicted as "cold". Only groups whose
// signature is a subset of p's constrained attributes are scanned; among
// covering answers, rank-faithful query answers are preferred over crawl
// sets, then the smallest match set wins (cheapest to filter). A crawl
// set serves only when the filtered match set fits under systemK: its
// tuples are in ID order, and a result the database would truncate cannot
// be emulated without the unknowable rank order. Entries older than ttl
// (when positive) are skipped; the owning shard expires them on its own
// schedule.
func (d *completeDir) lookup(p relation.Predicate, ttl time.Duration, now time.Time, systemK int) (res hidden.Result, key string, viaCrawl, ok bool) {
	pa := condAttrs(p)
	d.mu.RLock()
	var (
		best      completeEntry
		bestCrawl completeEntry
		found     bool
		foundCr   bool
	)
	for _, g := range d.groups {
		if !subsetInts(g.attrs, pa) {
			continue
		}
		for _, e := range g.entries {
			if ttl > 0 && now.Sub(e.storedAt) > ttl {
				continue
			}
			if e.idOrder {
				if (!foundCr || len(e.res.Tuples) < len(bestCrawl.res.Tuples)) && e.pred.Covers(p) {
					bestCrawl, foundCr = e, true
				}
				continue
			}
			if (!found || len(e.res.Tuples) < len(best.res.Tuples)) && e.pred.Covers(p) {
				best, found = e, true
			}
		}
	}
	d.mu.RUnlock()
	if !found {
		if !foundCr {
			return hidden.Result{}, "", false, false
		}
		best, viaCrawl = bestCrawl, true
	}
	out := hidden.Result{Tuples: make([]relation.Tuple, 0, len(best.res.Tuples))}
	for _, t := range best.res.Tuples {
		if p.Match(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	if viaCrawl && systemK > 0 && len(out.Tuples) > systemK {
		// The database would truncate this answer to its unknowable top-k;
		// every other crawl cover filters to the same set, so give up.
		return hidden.Result{}, "", false, false
	}
	return out, best.key, viaCrawl, true
}

// lens reports the number of registered complete answers: rank-faithful
// query answers and crawl-admitted region sets.
func (d *completeDir) lens() (faithful, crawl int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.sigs) - d.crawl, d.crawl
}

// purgeRegion drops every registered answer whose predicate intersects
// rect — the containment half of a region-scoped epoch wipe. Disjoint
// complete answers and crawl sets keep serving.
func (d *completeDir) purgeRegion(rect region.Rect) {
	d.mu.Lock()
	for sig, g := range d.groups {
		for key, e := range g.entries {
			if !predIntersectsRect(e.pred, rect) {
				continue
			}
			if e.idOrder {
				d.crawl--
			}
			delete(g.entries, key)
			delete(d.sigs, key)
		}
		if len(g.entries) == 0 {
			delete(d.groups, sig)
		}
	}
	d.mu.Unlock()
}

// purge drops every registered answer.
func (d *completeDir) purge() {
	d.mu.Lock()
	d.groups = make(map[string]*completeGroup)
	d.sigs = make(map[string]string)
	d.crawl = 0
	d.mu.Unlock()
}

// PredicateOfKey reconstructs the predicate serialised by AppendKey. The
// canonical key is a faithful encoding of every constraining condition, so
// the round trip loses nothing the cache ever distinguished. ok is false
// for malformed keys.
func PredicateOfKey(key string) (relation.Predicate, bool) {
	var p relation.Predicate
	buf := []byte(key)
	for len(buf) > 0 {
		switch buf[0] {
		case 'c':
			if len(buf) < 9 {
				return relation.Predicate{}, false
			}
			attr := int(binary.LittleEndian.Uint32(buf[1:5]))
			n := int(binary.LittleEndian.Uint32(buf[5:9]))
			buf = buf[9:]
			if n < 0 || len(buf) < 4*n {
				return relation.Predicate{}, false
			}
			cats := make([]int, n)
			for i := 0; i < n; i++ {
				cats[i] = int(binary.LittleEndian.Uint32(buf[4*i : 4*i+4]))
			}
			buf = buf[4*n:]
			p = p.WithCategories(attr, cats)
		case 'n':
			if len(buf) < 22 {
				return relation.Predicate{}, false
			}
			attr := int(binary.LittleEndian.Uint32(buf[1:5]))
			iv := relation.Interval{
				Lo:     math.Float64frombits(binary.LittleEndian.Uint64(buf[5:13])),
				Hi:     math.Float64frombits(binary.LittleEndian.Uint64(buf[13:21])),
				LoOpen: buf[21]&1 != 0,
				HiOpen: buf[21]&2 != 0,
			}
			buf = buf[22:]
			p = p.WithInterval(attr, iv)
		default:
			return relation.Predicate{}, false
		}
	}
	return p, true
}
