package qcache

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/crawl"
	"repro/internal/hidden"
	"repro/internal/kvstore"
	"repro/internal/parallel"
	"repro/internal/relation"
)

// hotWorkload cycles `passes` times over `preds` disjoint price windows —
// an LRU-sensitive working set: it hits almost always when the cache
// holds all of it and almost never when the cache holds less.
func hotWorkload(t *testing.T, db hidden.DB, preds, passes int) {
	t.Helper()
	ctx := context.Background()
	for pass := 0; pass < passes; pass++ {
		for i := 0; i < preds; i++ {
			lo := float64(i * 50)
			if _, err := db.Search(ctx, pricePred(lo, lo+30)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestPoolNamespacesAreIsolated(t *testing.T) {
	pool := NewPool(PoolConfig{})
	a, err := pool.Namespace("a", testDB(t, 100, 50), Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Namespace("b", testDB(t, 40, 50), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// The same predicate resolves per namespace: the two sources have
	// different match sets for [0, 60].
	ra, err := a.Search(ctx, pricePred(0, 60))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Search(ctx, pricePred(0, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Tuples) == len(rb.Tuples) {
		t.Fatalf("namespaces shared an answer: %d vs %d tuples", len(ra.Tuples), len(rb.Tuples))
	}
	if st := a.Stats(); st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("namespace a stats = %+v", st)
	}
	ps := pool.Stats()
	if ps.Entries != 2 || len(ps.Namespaces) != 2 {
		t.Fatalf("pool stats = %+v", ps)
	}
	if ps.Namespaces["b"].Misses != 1 {
		t.Fatalf("pool namespace b stats = %+v", ps.Namespaces["b"])
	}
	if _, err := pool.Namespace("a", testDB(t, 10, 5), Config{}); err == nil {
		t.Fatal("duplicate namespace name accepted")
	}
}

// TestPoolHotSourceBorrowsIdleCapacity is the cross-source sharding
// demonstration: under a global budget equal to one dedicated per-source
// budget, a hot source sharing the pool with an idle source matches its
// dedicated-cache hit rate — and beats a dedicated cache holding only its
// per-source slice of the same total memory.
func TestPoolHotSourceBorrowsIdleCapacity(t *testing.T) {
	const (
		budget = 8192
		preds  = 8
		passes = 3
	)
	mk := func() *hidden.Local { return testDB(t, 1000, 20) }
	cfg := Config{DisableContainment: true}

	// PR-2 world: a dedicated cache with the full budget.
	dedicated, err := New(mk(), Config{MaxBytes: budget, Shards: 1, DisableContainment: true})
	if err != nil {
		t.Fatal(err)
	}
	hotWorkload(t, dedicated, preds, passes)

	// The same total memory split statically across two sources.
	halved, err := New(mk(), Config{MaxBytes: budget / 2, Shards: 1, DisableContainment: true})
	if err != nil {
		t.Fatal(err)
	}
	hotWorkload(t, halved, preds, passes)

	// The pool: one hot and one idle namespace over the full budget.
	pool := NewPool(PoolConfig{MaxBytes: budget, Shards: 1})
	hot, err := pool.Namespace("hot", mk(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Namespace("idle", mk(), cfg); err != nil {
		t.Fatal(err)
	}
	hotWorkload(t, hot, preds, passes)

	full, half, pooled := dedicated.Stats().HitRate(), halved.Stats().HitRate(), hot.Stats().HitRate()
	if full < 0.5 {
		t.Fatalf("dedicated cache did not fit the working set (hit rate %.2f); test sizes are off", full)
	}
	if pooled < full-0.01 {
		t.Fatalf("pooled hot hit rate %.2f below dedicated %.2f", pooled, full)
	}
	if pooled <= half+0.2 {
		t.Fatalf("pooled hot hit rate %.2f does not beat the static split %.2f", pooled, half)
	}
}

func TestPoolFloorProtectsQuietNamespace(t *testing.T) {
	pool := NewPool(PoolConfig{MaxBytes: 8192, Shards: 1})
	quietDB := testDB(t, 1000, 20)
	quiet, err := pool.Namespace("quiet", quietDB, Config{DisableContainment: true})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := pool.Namespace("hot", testDB(t, 1000, 20), Config{DisableContainment: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// One entry for the quiet source, well under its floor (8192/2/2 = 2048).
	if _, err := quiet.Search(ctx, pricePred(0, 20)); err != nil {
		t.Fatal(err)
	}
	// The hot source floods the pool far past the budget.
	for i := 0; i < 50; i++ {
		lo := float64(i * 20)
		if _, err := hot.Search(ctx, pricePred(lo, lo+200)); err != nil {
			t.Fatal(err)
		}
	}
	if hot.Stats().Evictions == 0 && pool.Stats().Evictions == 0 {
		t.Fatal("flood forced no evictions; sizes are off")
	}
	// The quiet source's entry survived under its floor.
	before := quietDB.QueryCount()
	if _, err := quiet.Search(ctx, pricePred(0, 20)); err != nil {
		t.Fatal(err)
	}
	if quietDB.QueryCount() != before {
		t.Fatal("quiet namespace's floor-protected entry was evicted by foreign pressure")
	}
}

// mutableDB swaps its inner database between searches, simulating a live
// source whose answers change size over time. Name/schema/system-k stay
// fixed so the persistence fingerprint does not change.
type mutableDB struct {
	mu    sync.Mutex
	inner hidden.DB
}

func (m *mutableDB) swap(db hidden.DB) { m.mu.Lock(); m.inner = db; m.mu.Unlock() }
func (m *mutableDB) get() hidden.DB    { m.mu.Lock(); defer m.mu.Unlock(); return m.inner }

func (m *mutableDB) Name() string             { return m.get().Name() }
func (m *mutableDB) Schema() *relation.Schema { return m.get().Schema() }
func (m *mutableDB) SystemK() int             { return m.get().SystemK() }
func (m *mutableDB) Search(ctx context.Context, p relation.Predicate) (hidden.Result, error) {
	return m.get().Search(ctx, p)
}

// TestRefusedAdmissionDeletesStaleRecord is the persist/replace/restart
// round trip: when a refill is refused admission (the fresh answer
// outgrew the budget), the stale persisted record for that key must be
// deleted — otherwise a restart warms back an answer memory had already
// dropped.
func TestRefusedAdmissionDeletesStaleRecord(t *testing.T) {
	// denseTestDB piles n tuples onto prices 0..5, so [0, 5] matches all
	// of them — the "grown" version of the 10-tuple source below.
	denseTestDB := func(n int) *hidden.Local {
		rel := relation.NewRelation("test", testSchema())
		for i := 0; i < n; i++ {
			rel.MustAppend(relation.Tuple{ID: int64(i), Values: []float64{float64(i % 6), float64(i % 3)}})
		}
		db, err := hidden.NewLocal("test", rel, 50, func(tu relation.Tuple) float64 { return float64(tu.ID) })
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	store := kvstore.NewMemory()
	db := &mutableDB{inner: denseTestDB(6)} // [0, 5] matches 6 tuples: small
	c, err := New(db, Config{Store: store, MaxBytes: 1000, Shards: 1, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(9000, 0)
	now := base
	c.setClock(func() time.Time { return now })
	ctx := context.Background()
	p := pricePred(0, 5)
	if _, err := c.Search(ctx, p); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 { // fingerprint + the answer
		t.Fatalf("store holds %d records after fill", store.Len())
	}
	// The source grows: the same predicate now matches 48 tuples, whose
	// answer no longer fits the 1000-byte budget. Expire the resident
	// entry and refill.
	db.swap(denseTestDB(48))
	now = now.Add(2 * time.Minute)
	res, err := c.Search(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 48 {
		t.Fatalf("refreshed answer has %d tuples", len(res.Tuples))
	}
	if st := c.Stats(); st.Entries != 0 || st.Expired != 1 {
		t.Fatalf("refused refill left stats %+v", st)
	}
	if store.Len() != 1 {
		t.Fatalf("stale record survived a refused admission: %d records", store.Len())
	}
	// A restart must come up cold for p, not warm a stale answer.
	c2, err := New(denseTestDB(48), Config{Store: store, MaxBytes: 1000, Shards: 1, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Warmed != 0 {
		t.Fatalf("restart warmed %d stale entries", st.Warmed)
	}
}

// TestContainmentHitRefreshesLRU: the complete answer serving containment
// traffic must be refreshed in its shard's LRU, or the budget evicts the
// pool's most valuable entry as "cold".
func TestContainmentHitRefreshesLRU(t *testing.T) {
	db := testDB(t, 1000, 40)
	// Budget fits the broad answer plus roughly one filler entry.
	c, err := New(db, Config{MaxBytes: 2300, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	broad := pricePred(10, 40) // 31 tuples, complete
	if res, err := c.Search(ctx, broad); err != nil || res.Overflow {
		t.Fatalf("broad fill: %v overflow=%v", err, res.Overflow)
	}
	const rounds = 15
	for i := 0; i < rounds; i++ {
		// Containment traffic through the broad answer...
		if _, err := c.Search(ctx, pricePred(15, 25)); err != nil {
			t.Fatal(err)
		}
		// ...interleaved with fresh entries that pressure the budget.
		lo := 500 + float64(i)*30
		if _, err := c.Search(ctx, pricePred(lo, lo+20)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no eviction pressure generated: %+v", st)
	}
	// The broad answer survived every round: all narrow searches were
	// containment hits and the last one still costs no web query.
	if st.ContainmentHits != rounds {
		t.Fatalf("containment hits = %d, want %d (broad answer evicted as cold)", st.ContainmentHits, rounds)
	}
	before := db.QueryCount()
	if _, err := c.Search(ctx, pricePred(15, 25)); err != nil {
		t.Fatal(err)
	}
	if db.QueryCount() != before {
		t.Fatal("broad answer no longer serves containment traffic")
	}
}

// TestConcurrentContainmentAndEvictions drives containment hits
// concurrently with budget evictions; run with -race it guards the
// touch/evict interplay introduced by the LRU refresh.
func TestConcurrentContainmentAndEvictions(t *testing.T) {
	db := testDB(t, 2000, 30)
	oracle := testDB(t, 2000, 30)
	c, err := New(db, Config{MaxBytes: 16 << 10, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 150; i++ {
				var p relation.Predicate
				if g%2 == 0 {
					// Broad complete answers: churn the budget.
					lo := r.Float64() * 1900
					p = pricePred(lo, lo+25)
				} else {
					// Narrow predicates: containment candidates.
					lo := 100 + r.Float64()*50
					p = pricePred(lo, lo+5)
				}
				got, err := c.Search(ctx, p)
				if err != nil {
					errc <- err
					return
				}
				want, err := oracle.Search(ctx, p)
				if err != nil {
					errc <- err
					return
				}
				if len(got.Tuples) != len(want.Tuples) || got.Overflow != want.Overflow {
					errc <- fmt.Errorf("goroutine %d iter %d: %d/%v tuples, want %d/%v",
						g, i, len(got.Tuples), got.Overflow, len(want.Tuples), want.Overflow)
					return
				}
				for j := range got.Tuples {
					if got.Tuples[j].ID != want.Tuples[j].ID {
						errc <- fmt.Errorf("goroutine %d iter %d tuple %d: ID %d, want %d",
							g, i, j, got.Tuples[j].ID, want.Tuples[j].ID)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestCrawlRefillServesInRegionPredicates: after a complete region crawl
// through the cache, predicates inside the region whose match sets fit
// under system-k are answered with zero web-database queries.
func TestCrawlRefillServesInRegionPredicates(t *testing.T) {
	db := testDB(t, 200, 10)
	truth := testDB(t, 200, 10)
	c, err := New(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	region := pricePred(50, 100) // 51 matches >> system-k 10: crawl splits
	ex := parallel.New(c)
	out, cstats, err := crawl.All(ctx, ex, region, crawl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cstats.Complete || len(out) != 51 {
		t.Fatalf("crawl: complete=%v, %d tuples", cstats.Complete, len(out))
	}
	if st := c.Stats(); st.CrawlEntries != 1 {
		t.Fatalf("crawl set not admitted: %+v", st)
	}

	// A predicate spanning the crawl's split boundary is covered by no
	// single cached sub-answer — only the admitted region set serves it.
	before := db.QueryCount()
	narrow := pricePred(72, 78) // 7 matches <= system-k
	got, err := c.Search(ctx, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if db.QueryCount() != before {
		t.Fatal("in-region predicate still paid a web-database query")
	}
	if st := c.Stats(); st.CrawlHits == 0 {
		t.Fatalf("crawl hit not counted: %+v", st)
	}
	want, err := truth.Search(ctx, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if got.Overflow != want.Overflow || len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("crawl-served answer differs: %d/%v vs %d/%v",
			len(got.Tuples), got.Overflow, len(want.Tuples), want.Overflow)
	}
	// Crawl-served answers carry the exact match set in ID order.
	wantIDs := make(map[int64]bool, len(want.Tuples))
	for _, tu := range want.Tuples {
		wantIDs[tu.ID] = true
	}
	for i, tu := range got.Tuples {
		if !wantIDs[tu.ID] {
			t.Fatalf("unexpected tuple %d in crawl-served answer", tu.ID)
		}
		if i > 0 && got.Tuples[i-1].ID >= tu.ID {
			t.Fatal("crawl-served answer not in ID order")
		}
	}

	// A predicate matching more than system-k tuples cannot be emulated
	// (the database's top-k subset is unknowable) and must hit the web
	// database, byte-identically.
	before = db.QueryCount()
	wide := pricePred(55, 95) // 41 matches > system-k
	got, err = c.Search(ctx, wide)
	if err != nil {
		t.Fatal(err)
	}
	if db.QueryCount() == before {
		t.Fatal("overflowing in-region predicate served from the crawl set")
	}
	want, err = truth.Search(ctx, wide)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Overflow || len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("wide answer differs: %d/%v", len(got.Tuples), got.Overflow)
	}
	for i := range want.Tuples {
		if got.Tuples[i].ID != want.Tuples[i].ID {
			t.Fatalf("wide tuple %d: ID %d, want %d", i, got.Tuples[i].ID, want.Tuples[i].ID)
		}
	}
}

// TestCrawlRefillPersists: crawl-admitted region sets survive a restart
// through the persistent store like any other entry.
func TestCrawlRefillPersists(t *testing.T) {
	store := kvstore.NewMemory()
	db := testDB(t, 200, 10)
	c, err := New(db, Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := crawl.All(ctx, parallel.New(c), pricePred(50, 100), crawl.Options{}); err != nil {
		t.Fatal(err)
	}
	if c.Stats().CrawlEntries != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}

	db2 := testDB(t, 200, 10)
	c2, err := New(db2, Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.CrawlEntries != 1 {
		t.Fatalf("crawl set lost across restart: %+v", st)
	}
	before := db2.QueryCount()
	if _, err := c2.Search(ctx, pricePred(72, 78)); err != nil {
		t.Fatal(err)
	}
	if db2.QueryCount() != before {
		t.Fatal("restarted cache paid a web query inside the crawled region")
	}
}

// TestAdmitCrawlDisabledContainment: the refill is a no-op when
// containment reuse is off.
func TestAdmitCrawlDisabledContainment(t *testing.T) {
	c, err := New(testDB(t, 100, 10), Config{DisableContainment: true})
	if err != nil {
		t.Fatal(err)
	}
	c.AdmitCrawl(pricePred(0, 50), []relation.Tuple{{ID: 1, Values: []float64{1, 0}}})
	if st := c.Stats(); st.CrawlEntries != 0 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPoolCoalescingAcrossNamespaces: identical predicates in different
// namespaces are distinct flights; identical predicates in one namespace
// still coalesce.
func TestPoolCoalescingAcrossNamespaces(t *testing.T) {
	innerA := &blockingDB{schema: testSchema(), release: make(chan struct{}), started: make(chan struct{}, 8)}
	innerB := &blockingDB{schema: testSchema(), release: make(chan struct{}), started: make(chan struct{}, 8)}
	pool := NewPool(PoolConfig{})
	a, err := pool.Namespace("a", innerA, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Namespace("b", innerB, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(2)
		go func() { defer wg.Done(); _, _ = a.Search(ctx, pricePred(0, 100)) }()
		go func() { defer wg.Done(); _, _ = b.Search(ctx, pricePred(0, 100)) }()
	}
	// Each namespace's leader reaches its own database.
	<-innerA.started
	<-innerB.started
	deadline := time.After(5 * time.Second)
	for a.Stats().Coalesced+b.Stats().Coalesced < 2 {
		select {
		case <-deadline:
			t.Fatalf("coalesced = %d + %d", a.Stats().Coalesced, b.Stats().Coalesced)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(innerA.release)
	close(innerB.release)
	wg.Wait()
	if innerA.calls.Load() != 1 || innerB.calls.Load() != 1 {
		t.Fatalf("inner calls = %d, %d; cross-namespace flights merged", innerA.calls.Load(), innerB.calls.Load())
	}
}

// failingStore errors on every read, killing namespace registration at
// store-verification time.
type failingStore struct{ kvstore.Store }

func (failingStore) Get([]byte) ([]byte, bool, error) {
	return nil, false, fmt.Errorf("injected store failure")
}

// TestDroppedNamespacePrefixNotReused: a namespace that fails
// registration must not free its key prefix for reuse — a later
// namespace sharing a live namespace's prefix would silently mix two
// sources' cache entries under identical canonical keys.
func TestDroppedNamespacePrefixNotReused(t *testing.T) {
	pool := NewPool(PoolConfig{})
	if _, err := pool.Namespace("broken", testDB(t, 10, 5), Config{Store: failingStore{kvstore.NewMemory()}}); err == nil {
		t.Fatal("failing store accepted")
	}
	a, err := pool.Namespace("a", testDB(t, 100, 50), Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Namespace("b", testDB(t, 40, 50), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ra, err := a.Search(ctx, pricePred(0, 60))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Search(ctx, pricePred(0, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Tuples) == len(rb.Tuples) {
		t.Fatalf("prefix collision: both namespaces see %d tuples", len(ra.Tuples))
	}
	if st := b.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("namespace b stats = %+v", st)
	}
}
