package qcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/hidden"
	"repro/internal/region"
	"repro/internal/relation"
)

// Persistence layout. The store holds one epoch record describing the
// source version the cache was filled from, plus one record per cached
// search:
//
//	m/src        sha256(name, system-k, schema JSON) || epoch seq (8 bytes LE)
//	q/<key>      codecVersion, storedAt (unixnano), overflow, tuples
//
// At boot the fingerprint half is compared against the live database; any
// mismatch (different catalog, different system-k, changed schema) wipes
// the store, because every cached answer was produced by a source that no
// longer exists, and the recovered epoch seq is advanced past the stored
// one so cluster peers still on the old epoch re-synchronize. On a match
// the stored seq is adopted, so a restart resumes the epoch lineage
// instead of resetting it. Records written before the seq suffix existed
// (a bare 32-byte fingerprint) are read as seq 1.
//
// The epoch lifecycle (internal/epoch) extends the same verification to a
// running process: a change-detection bump calls adoptEpoch, which wipes
// the q/ records and rewrites m/src with the new seq while the namespace
// keeps serving.

const codecVersion = 1

var fingerprintKey = []byte("m/src")

func storeKey(key string) []byte {
	k := make([]byte, 0, 2+len(key))
	k = append(k, 'q', '/')
	return append(k, key...)
}

// fingerprint hashes the identity of the source behind the cache.
func fingerprint(db hidden.DB) ([]byte, error) {
	schemaJSON, err := json.Marshal(db.Schema())
	if err != nil {
		return nil, fmt.Errorf("qcache: fingerprint schema: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00", db.Name(), db.SystemK())
	h.Write(schemaJSON)
	return h.Sum(nil), nil
}

// openStore verifies the stored epoch record (wiping a stale store) and
// loads the surviving entries oldest-first, so the LRU ends up
// newest-at-front and the byte budget drops the oldest answers.
// Crawl-admitted region sets persist under their 'R'-marked keys and
// re-enter the containment directory exactly as they left it. On a
// fingerprint match the persisted epoch seq is adopted into
// ns.epochSeq; on a mismatch the store is wiped and the seq advanced
// past the stored one.
func (ns *namespace) openStore() error {
	got, ok, err := ns.store.Get(fingerprintKey)
	if err != nil {
		return fmt.Errorf("qcache: read fingerprint: %w", err)
	}
	storedSeq := uint64(1)
	if ok && len(got) >= len(ns.fp)+8 {
		storedSeq = binary.LittleEndian.Uint64(got[len(ns.fp) : len(ns.fp)+8])
	}
	if !ok || len(got) < len(ns.fp) || !bytes.Equal(got[:len(ns.fp)], ns.fp) {
		if err := ns.wipeStore(); err != nil {
			return err
		}
		if ok {
			// A changed source identity observed across a restart is an
			// epoch bump like any other: the lineage continues past the
			// stored seq instead of resetting, so peers still holding the
			// old epoch adopt the new one rather than the reverse.
			storedSeq++
		}
		ns.epochSeq.Store(storedSeq)
		return ns.writeMeta()
	}
	ns.epochSeq.Store(storedSeq)
	if err := ns.writeMeta(); err != nil {
		return err
	}

	type warmEntry struct {
		key      string
		res      hidden.Result
		storedAt time.Time
	}
	var (
		warm    []warmEntry
		corrupt [][]byte
	)
	now := ns.pool.now()
	err = ns.store.Range(func(key, value []byte) bool {
		if len(key) < 2 || key[0] != 'q' || key[1] != '/' {
			return true
		}
		res, at, derr := decodeStored(value)
		if derr != nil {
			// A corrupt record is dropped rather than trusted; the
			// search will simply be re-issued on demand.
			corrupt = append(corrupt, append([]byte(nil), key...))
			return true
		}
		if ns.ttl > 0 && now.Sub(at) > ns.ttl {
			corrupt = append(corrupt, append([]byte(nil), key...))
			return true
		}
		warm = append(warm, warmEntry{key: string(key[2:]), res: res, storedAt: at})
		return true
	})
	if err != nil {
		return fmt.Errorf("qcache: load store: %w", err)
	}
	for _, key := range corrupt {
		_ = ns.store.Delete(key)
	}
	sort.Slice(warm, func(i, j int) bool { return warm[i].storedAt.Before(warm[j].storedAt) })
	var overflow []victim // records the budget could not readmit
	for _, w := range warm {
		pkey := ns.prefix + w.key
		sh := ns.pool.shardFor(pkey)
		sh.mu.Lock()
		admitted, victims := ns.insertLocked(sh, pkey, w.res, w.storedAt)
		sh.mu.Unlock()
		if !admitted {
			overflow = append(overflow, victim{ns: ns, key: w.key})
		}
		overflow = append(overflow, victims...)
	}
	// Oversized entries (crawl sets past the shard share) warm back in
	// against the global budget; settle it once after the batch.
	overflow = append(overflow, ns.pool.enforceGlobal(ns, "")...)
	deleteVictims(overflow)
	ns.warmed = int(ns.entries.Load())
	return nil
}

// persist writes one filled entry to the store, best-effort: a failed
// write only costs warmth after the next restart. Durability rides on the
// store's own crash recovery; no explicit sync per entry. seq is the
// epoch the answer was produced under; the write is skipped when the
// namespace has moved on and the answer's predicate cannot be proven
// disjoint from every bump since (the same admissibleAt fence the
// in-memory admission passed) — otherwise a slow leader could re-persist
// an invalidated answer after an epoch wipe already cleaned the store,
// and a restart would warm it back. storeMu orders the check against
// adoptEpoch's wipe: the seq advances before the wipe takes the lock, so
// a persist that passes the check is removed by the wipe when it
// intersects, and a persist after the wipe fails the check.
func (ns *namespace) persist(key string, p relation.Predicate, res hidden.Result, seq uint64) {
	ns.storeMu.Lock()
	defer ns.storeMu.Unlock()
	if !ns.admissibleAt(seq, p) {
		return
	}
	_ = ns.store.Put(storeKey(key), encodeStored(res, ns.pool.now()))
}

// writeMeta records the namespace's source identity and current epoch
// seq under the meta key.
func (ns *namespace) writeMeta() error {
	v := make([]byte, 0, len(ns.fp)+8)
	v = append(v, ns.fp...)
	v = binary.LittleEndian.AppendUint64(v, ns.epochSeq.Load())
	if err := ns.store.Put(fingerprintKey, v); err != nil {
		return fmt.Errorf("qcache: write fingerprint: %w", err)
	}
	return nil
}

// wipeStore removes every record, fingerprint included.
func (ns *namespace) wipeStore() error {
	var keys [][]byte
	err := ns.store.Range(func(key, _ []byte) bool {
		keys = append(keys, append([]byte(nil), key...))
		return true
	})
	if err != nil {
		return fmt.Errorf("qcache: wipe store: %w", err)
	}
	for _, k := range keys {
		if err := ns.store.Delete(k); err != nil {
			return fmt.Errorf("qcache: wipe store: %w", err)
		}
	}
	return nil
}

// wipeRecords removes every answer record — q/-prefixed keys, which
// include the 'R'-marked crawl sets — but keeps the meta record, which
// the caller rewrites with the new epoch seq.
func (ns *namespace) wipeRecords() error {
	var keys [][]byte
	err := ns.store.Range(func(key, _ []byte) bool {
		if len(key) >= 2 && key[0] == 'q' && key[1] == '/' {
			keys = append(keys, append([]byte(nil), key...))
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("qcache: wipe records: %w", err)
	}
	for _, k := range keys {
		if err := ns.store.Delete(k); err != nil {
			return fmt.Errorf("qcache: wipe records: %w", err)
		}
	}
	return nil
}

// wipeRecordsRegion removes the answer records whose predicate intersects
// rect — the persistent half of a region-scoped epoch wipe. Disjoint
// records (and the meta record) survive, so a restart warms the retained
// half of the namespace back; undecodable keys are conservatively
// dropped.
func (ns *namespace) wipeRecordsRegion(rect region.Rect) error {
	var keys [][]byte
	err := ns.store.Range(func(key, _ []byte) bool {
		if len(key) >= 2 && key[0] == 'q' && key[1] == '/' && keyIntersects(string(key[2:]), rect) {
			keys = append(keys, append([]byte(nil), key...))
		}
		return true
	})
	if err != nil {
		return fmt.Errorf("qcache: wipe region records: %w", err)
	}
	for _, k := range keys {
		if err := ns.store.Delete(k); err != nil {
			return fmt.Errorf("qcache: wipe region records: %w", err)
		}
	}
	return nil
}

// encodeStored serialises one search result with its fill time.
func encodeStored(res hidden.Result, at time.Time) []byte {
	size := 1 + 8 + 1 + 4
	for _, t := range res.Tuples {
		size += 10 + 8*len(t.Values)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(at.UnixNano()))
	var overflow byte
	if res.Overflow {
		overflow = 1
	}
	buf = append(buf, overflow)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(res.Tuples)))
	for _, t := range res.Tuples {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.ID))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t.Values)))
		for _, v := range t.Values {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

func decodeStored(buf []byte) (hidden.Result, time.Time, error) {
	if len(buf) < 14 || buf[0] != codecVersion {
		return hidden.Result{}, time.Time{}, fmt.Errorf("bad record header")
	}
	at := time.Unix(0, int64(binary.LittleEndian.Uint64(buf[1:9])))
	res := hidden.Result{Overflow: buf[9] != 0}
	n := int(binary.LittleEndian.Uint32(buf[10:14]))
	off := 14
	for i := 0; i < n; i++ {
		if len(buf) < off+10 {
			return hidden.Result{}, time.Time{}, fmt.Errorf("truncated tuple %d", i)
		}
		id := int64(binary.LittleEndian.Uint64(buf[off : off+8]))
		nv := int(binary.LittleEndian.Uint16(buf[off+8 : off+10]))
		off += 10
		if len(buf) < off+8*nv {
			return hidden.Result{}, time.Time{}, fmt.Errorf("truncated tuple %d values", i)
		}
		vals := make([]float64, nv)
		for j := 0; j < nv; j++ {
			vals[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off : off+8]))
			off += 8
		}
		res.Tuples = append(res.Tuples, relation.Tuple{ID: id, Values: vals})
	}
	return res, at, nil
}
