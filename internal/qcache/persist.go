package qcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/hidden"
	"repro/internal/relation"
)

// Persistence layout. The store holds one fingerprint record describing
// the source the cache was filled from, plus one record per cached search:
//
//	m/src        sha256(name, system-k, schema JSON)
//	q/<key>      codecVersion, storedAt (unixnano), overflow, tuples
//
// At boot the fingerprint is compared against the live database; any
// mismatch (different catalog, different system-k, changed schema) wipes
// the store, because every cached answer was produced by a source that no
// longer exists. This mirrors the boot-time cache verification QR2
// performs on the dense-region index.

const codecVersion = 1

var fingerprintKey = []byte("m/src")

func storeKey(key string) []byte {
	k := make([]byte, 0, 2+len(key))
	k = append(k, 'q', '/')
	return append(k, key...)
}

// fingerprint hashes the identity of the source behind the cache.
func fingerprint(db hidden.DB) ([]byte, error) {
	schemaJSON, err := json.Marshal(db.Schema())
	if err != nil {
		return nil, fmt.Errorf("qcache: fingerprint schema: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00", db.Name(), db.SystemK())
	h.Write(schemaJSON)
	return h.Sum(nil), nil
}

// openStore verifies the fingerprint (wiping a stale store) and loads the
// surviving entries oldest-first, so the LRU ends up newest-at-front and
// the byte budget drops the oldest answers. Crawl-admitted region sets
// persist under their 'R'-marked keys and re-enter the containment
// directory exactly as they left it.
func (ns *namespace) openStore() error {
	want, err := fingerprint(ns.inner)
	if err != nil {
		return err
	}
	got, ok, err := ns.store.Get(fingerprintKey)
	if err != nil {
		return fmt.Errorf("qcache: read fingerprint: %w", err)
	}
	if !ok || !bytes.Equal(got, want) {
		if err := ns.wipeStore(); err != nil {
			return err
		}
		if err := ns.store.Put(fingerprintKey, want); err != nil {
			return fmt.Errorf("qcache: write fingerprint: %w", err)
		}
		return nil
	}

	type warmEntry struct {
		key      string
		res      hidden.Result
		storedAt time.Time
	}
	var (
		warm    []warmEntry
		corrupt [][]byte
	)
	now := ns.pool.now()
	err = ns.store.Range(func(key, value []byte) bool {
		if len(key) < 2 || key[0] != 'q' || key[1] != '/' {
			return true
		}
		res, at, derr := decodeStored(value)
		if derr != nil {
			// A corrupt record is dropped rather than trusted; the
			// search will simply be re-issued on demand.
			corrupt = append(corrupt, append([]byte(nil), key...))
			return true
		}
		if ns.ttl > 0 && now.Sub(at) > ns.ttl {
			corrupt = append(corrupt, append([]byte(nil), key...))
			return true
		}
		warm = append(warm, warmEntry{key: string(key[2:]), res: res, storedAt: at})
		return true
	})
	if err != nil {
		return fmt.Errorf("qcache: load store: %w", err)
	}
	for _, key := range corrupt {
		_ = ns.store.Delete(key)
	}
	sort.Slice(warm, func(i, j int) bool { return warm[i].storedAt.Before(warm[j].storedAt) })
	var overflow []victim // records the budget could not readmit
	for _, w := range warm {
		pkey := ns.prefix + w.key
		sh := ns.pool.shardFor(pkey)
		sh.mu.Lock()
		admitted, victims := ns.insertLocked(sh, pkey, w.res, w.storedAt)
		sh.mu.Unlock()
		if !admitted {
			overflow = append(overflow, victim{ns: ns, key: w.key})
		}
		overflow = append(overflow, victims...)
	}
	// Oversized entries (crawl sets past the shard share) warm back in
	// against the global budget; settle it once after the batch.
	overflow = append(overflow, ns.pool.enforceGlobal(ns, "")...)
	deleteVictims(overflow)
	ns.warmed = int(ns.entries.Load())
	return nil
}

// persist writes one filled entry to the store, best-effort: a failed
// write only costs warmth after the next restart. Durability rides on the
// store's own crash recovery; no explicit sync per entry.
func (ns *namespace) persist(key string, res hidden.Result) {
	_ = ns.store.Put(storeKey(key), encodeStored(res, ns.pool.now()))
}

// wipeStore removes every record, fingerprint included.
func (ns *namespace) wipeStore() error {
	var keys [][]byte
	err := ns.store.Range(func(key, _ []byte) bool {
		keys = append(keys, append([]byte(nil), key...))
		return true
	})
	if err != nil {
		return fmt.Errorf("qcache: wipe store: %w", err)
	}
	for _, k := range keys {
		if err := ns.store.Delete(k); err != nil {
			return fmt.Errorf("qcache: wipe store: %w", err)
		}
	}
	return nil
}

// encodeStored serialises one search result with its fill time.
func encodeStored(res hidden.Result, at time.Time) []byte {
	size := 1 + 8 + 1 + 4
	for _, t := range res.Tuples {
		size += 10 + 8*len(t.Values)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, codecVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(at.UnixNano()))
	var overflow byte
	if res.Overflow {
		overflow = 1
	}
	buf = append(buf, overflow)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(res.Tuples)))
	for _, t := range res.Tuples {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(t.ID))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(t.Values)))
		for _, v := range t.Values {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

func decodeStored(buf []byte) (hidden.Result, time.Time, error) {
	if len(buf) < 14 || buf[0] != codecVersion {
		return hidden.Result{}, time.Time{}, fmt.Errorf("bad record header")
	}
	at := time.Unix(0, int64(binary.LittleEndian.Uint64(buf[1:9])))
	res := hidden.Result{Overflow: buf[9] != 0}
	n := int(binary.LittleEndian.Uint32(buf[10:14]))
	off := 14
	for i := 0; i < n; i++ {
		if len(buf) < off+10 {
			return hidden.Result{}, time.Time{}, fmt.Errorf("truncated tuple %d", i)
		}
		id := int64(binary.LittleEndian.Uint64(buf[off : off+8]))
		nv := int(binary.LittleEndian.Uint16(buf[off+8 : off+10]))
		off += 10
		if len(buf) < off+8*nv {
			return hidden.Result{}, time.Time{}, fmt.Errorf("truncated tuple %d values", i)
		}
		vals := make([]float64, nv)
		for j := 0; j < nv; j++ {
			vals[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off : off+8]))
			off += 8
		}
		res.Tuples = append(res.Tuples, relation.Tuple{ID: id, Values: vals})
	}
	return res, at, nil
}
