package qcache

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/epoch"
	"repro/internal/hidden"
	"repro/internal/kvstore"
	"repro/internal/region"
	"repro/internal/relation"
)

func priceRect(lo, hi float64) region.Rect {
	return region.MustNew([]int{0}, []relation.Interval{relation.Closed(lo, hi)})
}

// TestRegionBumpSelectiveWipe: a region-scoped bump drops only the
// entries and crawl sets intersecting the bumped rect — from the shards,
// the containment directory and the store — and the survivors keep
// serving without touching the source.
func TestRegionBumpSelectiveWipe(t *testing.T) {
	ctx := context.Background()
	reg := epoch.NewRegistry()
	store := kvstore.NewMemory()
	db := newVerDB(100, 200)
	c, err := New(db, Config{Store: store, Epochs: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Two disjoint regions: entries + a crawl set each.
	if _, err := c.Search(ctx, pricePred(0, 30)); err != nil {
		t.Fatal(err)
	}
	c.AdmitCrawl(pricePred(10, 20), nil)
	if _, err := c.Search(ctx, pricePred(50, 90)); err != nil {
		t.Fatal(err)
	}
	c.AdmitCrawl(pricePred(60, 70), nil)
	sibling, err := c.Search(ctx, pricePred(55, 65)) // containment hit, ver 1
	if err != nil {
		t.Fatal(err)
	}
	queriesBefore := db.queries.Load()

	db.version.Store(2)
	reg.BumpRegion("verdb", priceRect(0, 40))

	st := c.Stats()
	if st.PartialWipes != 1 || st.EpochWipes != 0 {
		t.Fatalf("wipe counters = partial %d full %d, want 1 / 0", st.PartialWipes, st.EpochWipes)
	}
	if st.WipeDropped != 2 || st.WipeRetained != 2 {
		t.Fatalf("dropped/retained = %d / %d, want 2 / 2", st.WipeDropped, st.WipeRetained)
	}
	if st.Entries != 2 || st.CrawlEntries != 1 {
		t.Fatalf("post-wipe stats = %+v, want the 2 disjoint entries", st)
	}
	if _, ok := c.Peek(pricePred(0, 30)); ok {
		t.Fatal("entry intersecting the bumped rect survived")
	}
	// The sibling still serves byte-identically, with zero source queries.
	res, err := c.Search(ctx, pricePred(55, 65))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, sibling) {
		t.Fatal("sibling-region answer changed across the region bump")
	}
	if db.queries.Load() != queriesBefore {
		t.Fatal("sibling-region hit cost a source query after the region bump")
	}
	// The store dropped exactly the intersecting records: meta + 2
	// survivors remain, and a restart warms only those.
	if store.Len() != 3 {
		t.Fatalf("store has %d records after region wipe, want 3", store.Len())
	}
	c2, err := New(newVerDB(100, 200), Config{Store: store, Epochs: epoch.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Warmed != 2 {
		t.Fatalf("restart warmed %d entries, want the 2 retained", st.Warmed)
	}
}

// TestRegionFenceOnStaleAdmissions: an admission computed under a
// pre-bump epoch is installed only when its predicate is provably
// disjoint from every region bumped since — the region-aware narrowing
// of the old "equal seq or refuse" fence.
func TestRegionFenceOnStaleAdmissions(t *testing.T) {
	ctx := context.Background()
	reg := epoch.NewRegistry()
	db := newVerDB(100, 200)
	c, err := New(db, Config{Store: kvstore.NewMemory(), Epochs: reg})
	if err != nil {
		t.Fatal(err)
	}
	disjoint, err := db.Search(ctx, pricePred(50, 60))
	if err != nil {
		t.Fatal(err)
	}
	inside, err := db.Search(ctx, pricePred(10, 20))
	if err != nil {
		t.Fatal(err)
	}

	reg.BumpRegion("verdb", priceRect(0, 40))

	c.AdmitAt(pricePred(50, 60), disjoint, 1) // stale seq, disjoint rect: sound
	c.AdmitAt(pricePred(10, 20), inside, 1)   // stale seq inside the rect: refused
	if _, ok := c.Peek(pricePred(50, 60)); !ok {
		t.Fatal("disjoint stale admission refused — the fence over-rejects")
	}
	if _, ok := c.Peek(pricePred(10, 20)); ok {
		t.Fatal("stale admission inside the bumped rect installed — pre-change state served")
	}
	// Crawl sets ride the same fence.
	c.AdmitCrawlAt(pricePred(70, 80), nil, 1)
	c.AdmitCrawlAt(pricePred(20, 30), nil, 1)
	if st := c.Stats(); st.CrawlEntries != 1 {
		t.Fatalf("crawl entries = %d, want only the disjoint stale crawl", st.CrawlEntries)
	}
	// After a FULL bump no stale admission survives, however disjoint.
	reg.Bump("verdb")
	c.AdmitAt(pricePred(90, 95), disjoint, 2)
	if _, ok := c.Peek(pricePred(90, 95)); ok {
		t.Fatal("stale admission crossed an unscoped bump")
	}
}

// TestRegionBumpRace hammers exact hits, containment hits and fresh
// admissions in both the bumped and a sibling region while BumpRegion
// runs, asserting (a) no pre-change answer from the bumped region is
// served after BumpRegion returns and (b) sibling-region answers stay
// byte-identical to their pre-bump form throughout.
func TestRegionBumpRace(t *testing.T) {
	ctx := context.Background()
	reg := epoch.NewRegistry()
	db := newVerDB(100, 200)
	c, err := New(db, Config{Epochs: reg, Store: kvstore.NewMemory()})
	if err != nil {
		t.Fatal(err)
	}
	// Broad complete answers covering each region: narrower predicates
	// are containment hits, the path a sloppy partial wipe would leave
	// dangling.
	if _, err := c.Search(ctx, pricePred(0, 49)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(ctx, pricePred(50, 99)); err != nil {
		t.Fatal(err)
	}
	// Pre-compute the sibling region's expected answers (all version 1).
	want := make(map[float64]hidden.Result)
	for lo := 50.0; lo < 95; lo++ {
		res, err := c.Search(ctx, pricePred(lo, lo+5))
		if err != nil {
			t.Fatal(err)
		}
		want[lo] = res
	}

	var (
		bumped  atomic.Bool
		stop    atomic.Bool
		wg      sync.WaitGroup
		failMu  sync.Mutex
		failure string
	)
	fail := func(format string, args ...any) {
		failMu.Lock()
		if failure == "" {
			failure = fmt.Sprintf(format, args...)
		}
		failMu.Unlock()
		stop.Store(true)
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				insideBump := g%2 == 0
				lo := float64((g*7 + i) % 25)
				if !insideBump {
					lo += 50 + float64((g*3+i)%20)
				}
				pred := pricePred(lo, lo+5)
				mustBeFresh := bumped.Load()
				var res hidden.Result
				if i%3 == 0 {
					var ok bool
					res, ok = c.Peek(pred)
					if !ok {
						continue
					}
				} else {
					var err error
					res, err = c.Search(ctx, pred)
					if err != nil {
						fail("search: %v", err)
						return
					}
				}
				if insideBump && mustBeFresh {
					for _, tu := range res.Tuples {
						if tu.Values[1] != 2 {
							fail("stale version-%v answer from the bumped region after BumpRegion returned", tu.Values[1])
							return
						}
					}
				}
				if !insideBump {
					if w, ok := want[lo]; ok && !reflect.DeepEqual(res, w) {
						fail("sibling-region answer for [%v,%v] not byte-identical across the region bump", lo, lo+5)
						return
					}
				}
			}
		}(g)
	}

	time.Sleep(5 * time.Millisecond)
	db.version.Store(2)
	reg.BumpRegion("verdb", priceRect(0, 49))
	bumped.Store(true)
	time.Sleep(10 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if failure != "" {
		t.Fatal(failure)
	}
	st := c.Stats()
	if st.PartialWipes != 1 || st.EpochWipes != 0 {
		t.Fatalf("wipe counters = %+v, want 1 partial, 0 full", st)
	}
	if st.Bytes < 0 || (st.Entries == 0) != (st.Bytes == 0) {
		t.Fatalf("inconsistent accounting after concurrent region wipe: %+v", st)
	}
	// Post-quiesce: bumped-region residents are version 2, sibling
	// residents version 1.
	for lo := 0.0; lo < 95; lo += 5 {
		res, ok := c.Peek(pricePred(lo, lo+4))
		if !ok {
			continue
		}
		wantVer := 2.0
		if lo >= 50 {
			wantVer = 1.0
		}
		for _, tu := range res.Tuples {
			if tu.Values[1] != wantVer {
				t.Fatalf("region [%v,%v]: resident version %v, want %v", lo, lo+4, tu.Values[1], wantVer)
			}
		}
	}
}

// TestPredicateOfKeyRectIntersectionProperty: for random predicates and
// rects, any tuple a predicate matches that lies inside the rect is a
// witness that the wipe MUST drop the predicate's entry — the
// key-decoded intersection check can over-drop but never under-drop.
// Exact keys and crawl-prefixed keys must agree with the predicate-level
// check.
func TestPredicateOfKeyRectIntersectionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randPred := func() relation.Predicate {
		p := relation.Predicate{}
		if rng.Intn(4) > 0 { // numeric condition on price
			lo := rng.Float64() * 900
			p = p.WithInterval(0, relation.Interval{
				Lo: lo, Hi: lo + rng.Float64()*100,
				LoOpen: rng.Intn(2) == 0, HiOpen: rng.Intn(2) == 0,
			})
		}
		if rng.Intn(3) == 0 { // categorical condition on color
			var cats []int
			for c := 0; c < 3; c++ {
				if rng.Intn(2) == 0 {
					cats = append(cats, c)
				}
			}
			if len(cats) > 0 {
				p = p.WithCategories(1, cats)
			}
		}
		return p
	}
	for trial := 0; trial < 2000; trial++ {
		p := randPred()
		lo := rng.Float64() * 950
		rect := priceRect(lo, lo+rng.Float64()*60)

		// The round trip through the canonical key loses nothing the
		// intersection check depends on.
		rt, ok := PredicateOfKey(KeyOf(p))
		if !ok {
			t.Fatalf("trial %d: canonical key of %v undecodable", trial, p)
		}
		got := predIntersectsRect(p, rect)
		if predIntersectsRect(rt, rect) != got {
			t.Fatalf("trial %d: intersection differs across key round trip", trial)
		}
		if keyIntersects(KeyOf(p), rect) != got || keyIntersects(crawlKeyPrefix+KeyOf(p), rect) != got {
			t.Fatalf("trial %d: keyIntersects disagrees with predicate-level check", trial)
		}
		// Witness property: a matched tuple inside the rect forces true.
		for s := 0; s < 40; s++ {
			tu := relation.Tuple{ID: int64(s), Values: []float64{rng.Float64() * 1000, float64(rng.Intn(3))}}
			if p.Match(tu) && rect.ContainsTuple(tu) && !got {
				t.Fatalf("trial %d: tuple %v matches %v inside %v but predIntersectsRect said disjoint",
					trial, tu, p, rect)
			}
		}
	}
}
