package qcache

import (
	"container/list"
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/epoch"
	"repro/internal/hidden"
	"repro/internal/kvstore"
	"repro/internal/memgov"
	"repro/internal/obs"
	"repro/internal/region"
	"repro/internal/relation"
)

// Pool is one process-wide answer cache shared by any number of sources.
//
// Every source registers as a namespace; its canonical predicate keys are
// prefixed with the namespace id and hashed into one shared set of LRU
// shards, so all namespaces compete for a single global byte budget
// instead of each sitting on a private slice. A hot source therefore
// borrows capacity a quiet source is not using — the cross-source analogue
// of a broker-level cache — while a small per-namespace floor keeps one
// runaway source from evicting the rest to zero.
//
// The byte budget is a memgov.Account: fixed when the pool is sized with
// MaxBytes alone, or governed when the deployment splits one process
// budget between the pool and the dense indexes' tuple residency.
type Pool struct {
	acct      *memgov.Account
	shards    []*shard
	mask      uint64
	floorFrac float64
	now       func() time.Time
	evictions atomic.Int64

	nsCount atomic.Int64
	mu      sync.Mutex // guards nss and nextID
	nss     []*namespace
	nextID  uint32 // monotonic: prefixes are never reused, even after drop
}

// DefaultFloorFrac is the fraction of the budget reserved as per-namespace
// floors when PoolConfig.FloorFrac is zero: half the budget, split evenly,
// is protected; the other half floats to whichever namespace is hot.
const DefaultFloorFrac = 0.5

// PoolConfig sizes a Pool.
type PoolConfig struct {
	// MaxBytes is the global byte budget across all namespaces (default
	// DefaultMaxBytes). Negative admits no entries, leaving exact-match
	// coalescing as the only cache effect. Ignored when Account is set.
	MaxBytes int64
	// Shards is the number of independent LRU shards shared by every
	// namespace (default 16, rounded up to a power of two).
	Shards int
	// Account supplies a governed budget (memgov) instead of the fixed
	// MaxBytes, so the pool and other consumers share one process budget.
	Account *memgov.Account
	// FloorFrac is the fraction of the budget set aside as per-namespace
	// eviction floors, split evenly across namespaces (default
	// DefaultFloorFrac; negative disables floors). A namespace's coldest
	// entries are safe from *other* namespaces while it holds less than
	// its floor.
	FloorFrac float64
}

// NewPool builds an empty pool; sources join it with Namespace.
func NewPool(cfg PoolConfig) *Pool {
	acct := cfg.Account
	if acct == nil {
		if cfg.MaxBytes == 0 {
			cfg.MaxBytes = DefaultMaxBytes
		}
		acct = memgov.Fixed(cfg.MaxBytes)
	}
	n := cfg.Shards
	if n <= 0 {
		n = defaultShards
	}
	for n&(n-1) != 0 {
		n++
	}
	ff := cfg.FloorFrac
	switch {
	case ff == 0:
		ff = DefaultFloorFrac
	case ff < 0:
		ff = 0
	case ff > 1:
		ff = 1
	}
	p := &Pool{
		acct:      acct,
		shards:    make([]*shard, n),
		mask:      uint64(n - 1),
		floorFrac: ff,
		now:       time.Now,
	}
	for i := range p.shards {
		p.shards[i] = &shard{
			elems:   make(map[string]*list.Element),
			lru:     list.New(),
			flights: make(map[string]*flight),
		}
	}
	return p
}

// Namespace installs inner as a named member of the pool and returns its
// cache view. cfg.MaxBytes and cfg.Shards are pool-wide settings and are
// ignored here; TTL, Store and DisableContainment apply to this namespace
// only. Registering the same name twice is an error.
func (p *Pool) Namespace(name string, inner hidden.DB, cfg Config) (*Cache, error) {
	if inner == nil {
		return nil, fmt.Errorf("qcache: nil inner database")
	}
	if cfg.TTL < 0 {
		return nil, fmt.Errorf("qcache: negative TTL %v", cfg.TTL)
	}
	p.mu.Lock()
	for _, other := range p.nss {
		if other.name == name {
			p.mu.Unlock()
			return nil, fmt.Errorf("qcache: namespace %q already registered", name)
		}
	}
	fp, err := fingerprint(inner)
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	ns := &namespace{
		pool:    p,
		name:    name,
		prefix:  nsPrefix(p.nextID),
		inner:   inner,
		ttl:     cfg.TTL,
		store:   cfg.Store,
		systemK: inner.SystemK(),
		fp:      fp,
	}
	ns.epochSeq.Store(1)
	p.nextID++
	if !cfg.DisableContainment {
		ns.complete = newCompleteDir()
	}
	p.nss = append(p.nss, ns)
	p.mu.Unlock()
	p.nsCount.Add(1)
	if ns.store != nil {
		if err := ns.openStore(); err != nil {
			p.drop(ns)
			return nil, err
		}
	}
	if cfg.Epochs != nil {
		// Join the live epoch lifecycle: future bumps — local detections
		// and cluster adoptions alike — wipe the namespace, and a bump
		// the registry already knows about (a peer moved on while this
		// replica was down) invalidates the freshly warmed store now.
		ns.reg = cfg.Epochs
		cfg.Epochs.Subscribe(name, ns.adoptEpoch)
		ns.adoptEpoch(cfg.Epochs.Register(name, fp, ns.epochSeq.Load()))
	}
	return &Cache{ns: ns}, nil
}

// drop removes a namespace that failed to finish registration, releasing
// any entries its store warm-up already admitted.
func (p *Pool) drop(ns *namespace) {
	ns.purgeResident()
	p.mu.Lock()
	for i, other := range p.nss {
		if other == ns {
			p.nss = append(p.nss[:i], p.nss[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	p.nsCount.Add(-1)
}

// nsPrefix encodes a namespace id as the fixed-width key prefix.
func nsPrefix(id uint32) string {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], id)
	return string(b[:])
}

// setClock overrides time for TTL tests.
func (p *Pool) setClock(now func() time.Time) { p.now = now }

// limits reads the governed budget once and derives the per-shard byte
// budget and the per-namespace eviction floor (the bytes below which a
// namespace's entries are protected from other namespaces' pressure).
// One read per admission: under a governor, Account.Limit takes a global
// mutex, and this is called while holding a shard lock.
func (p *Pool) limits() (shardLimit, nsFloor int64) {
	lim := p.acct.Limit()
	if lim < 0 {
		return -1, 0
	}
	shardLimit = lim / int64(len(p.shards))
	if n := p.nsCount.Load(); n > 0 && p.floorFrac > 0 {
		nsFloor = int64(p.floorFrac * float64(lim) / float64(n))
	}
	return shardLimit, nsFloor
}

// shardFor picks the shard by an FNV-1a hash of the (prefixed) key.
func (p *Pool) shardFor(key string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return p.shards[h&p.mask]
}

// PoolStats is a point-in-time snapshot of the whole pool.
type PoolStats struct {
	// Limit is the byte budget currently available to the pool (a moving
	// number when the budget is governed).
	Limit int64 `json:"limit"`
	// Bytes and Entries describe global residency across all namespaces.
	Bytes   int64 `json:"bytes"`
	Entries int   `json:"entries"`
	// Evictions counts entries dropped pool-wide for the byte budget.
	Evictions int64 `json:"evictions"`
	// Namespaces maps source names to their per-namespace counters.
	Namespaces map[string]Stats `json:"namespaces"`
}

// Stats snapshots the pool and every namespace.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	nss := append([]*namespace(nil), p.nss...)
	p.mu.Unlock()
	st := PoolStats{
		Limit:      p.acct.Limit(),
		Evictions:  p.evictions.Load(),
		Namespaces: make(map[string]Stats, len(nss)),
	}
	for _, ns := range nss {
		s := ns.stats()
		st.Bytes += s.Bytes
		st.Entries += s.Entries
		st.Namespaces[ns.name] = s
	}
	return st
}

// shard is one independently locked slice of the shared key space.
type shard struct {
	mu      sync.Mutex
	elems   map[string]*list.Element // prefixed key -> *entry element
	lru     *list.List               // front = most recently used
	bytes   int64
	over    int64 // bytes of resident oversized entries (> shard share)
	flights map[string]*flight
}

// entry is one cached search result. key is namespace-prefixed (the shard
// map key); srcKey strips the prefix back off for the namespace's store
// and containment directory. oversized marks an entry admitted past the
// per-shard share and budgeted against the global pool limit instead —
// typically a crawl-admitted region set bigger than budget/shards.
type entry struct {
	ns        *namespace
	key       string
	res       hidden.Result
	size      int64
	storedAt  time.Time
	oversized bool
	// hits counts lookups this entry served (exact hits plus containment
	// wins), under the shard lock. It is the traffic signal hotPredicates
	// samples for sentinel placement; a replaced entry starts cold again.
	hits int64
}

func (e *entry) srcKey() string { return e.key[len(e.ns.prefix):] }

// victim names an evicted entry so the caller can mirror the eviction
// onto the owning namespace's persistent store outside the shard lock.
type victim struct {
	ns  *namespace
	key string // source key (unprefixed)
}

// flight is one in-progress inner search that identical concurrent
// searches wait on.
type flight struct {
	done chan struct{}
	res  hidden.Result
	err  error
}

// namespace is one source's membership in the pool: its key prefix, its
// containment directory, its persistent store and its counters. All
// resident bytes live in the pool's shared shards.
type namespace struct {
	pool     *Pool
	name     string
	prefix   string
	inner    hidden.DB
	ttl      time.Duration
	store    kvstore.Store
	complete *completeDir // nil when containment reuse is disabled
	systemK  int

	// fp is the boot fingerprint of the source (name, system-k, schema);
	// epochSeq is the live source epoch the namespace currently serves
	// under. Admissions capture the seq before querying the inner
	// database and re-check it under the shard lock, so an answer fetched
	// under an older epoch never enters after adoptEpoch's wipe — unless
	// every intervening bump was region-scoped and provably disjoint from
	// the answer's predicate (admissibleAt, fed by bumpHist). storeMu
	// orders persist writes against the epoch wipe of the store; adoptMu
	// serializes epoch transitions so the history and the seq advance
	// together.
	fp       []byte
	reg      *epoch.Registry // nil without a live epoch registry
	epochSeq atomic.Uint64
	storeMu  sync.Mutex
	adoptMu  sync.Mutex
	bumpHist atomic.Pointer[[]scopedBump]

	bytes      atomic.Int64
	entries    atomic.Int64
	hits       atomic.Int64
	contained  atomic.Int64
	crawlHits  atomic.Int64
	misses     atomic.Int64
	coalesced  atomic.Int64
	evictions  atomic.Int64
	expired    atomic.Int64
	epochWipes atomic.Int64
	warmed     int

	// Region-scoped invalidation counters: partialWipes counts scoped
	// bumps adopted as selective wipes (epochWipes counts full wipes
	// only), wipeDropped/wipeRetained count the entries each partial wipe
	// dropped and kept.
	partialWipes atomic.Int64
	wipeDropped  atomic.Int64
	wipeRetained atomic.Int64
}

// scopedBump records one adopted epoch transition and the region it was
// confined to; a nil scope is a full wipe (or a transition whose scope is
// unknown). The bounded history lets admissibleAt prove an answer fetched
// a few epochs ago untouched by everything that happened since.
type scopedBump struct {
	seq   uint64
	scope *region.Rect
}

// bumpHistCap bounds the recorded transition history. Anything older is
// treated as unknown, which admissibleAt resolves as "refuse" — the safe
// direction.
const bumpHistCap = 32

// pushBump appends one transition to the namespace's bump history. Called
// under adoptMu, before the seq advance makes the transition visible, so a
// reader that observes the new seq always finds its history entry.
func (ns *namespace) pushBump(seq uint64, scope *region.Rect) {
	var hist []scopedBump
	if old := ns.bumpHist.Load(); old != nil {
		hist = *old
	}
	if excess := len(hist) + 1 - bumpHistCap; excess > 0 {
		hist = hist[excess:]
	}
	next := make([]scopedBump, 0, len(hist)+1)
	next = append(next, hist...)
	next = append(next, scopedBump{seq: seq, scope: scope})
	ns.bumpHist.Store(&next)
}

// admissibleAt reports whether an answer for predicate p produced under
// epoch seq may still be admitted. Equality with the live seq is the
// classic fence. An older answer is additionally admissible when every
// intervening bump was region-scoped and its region is disjoint from p: a
// change confined elsewhere cannot have altered this answer, so a crawl or
// slow leader that straddled such a bump keeps its work. Any gap in the
// history, a full bump, or an intersecting scope refuses the admission.
func (ns *namespace) admissibleAt(seq uint64, p relation.Predicate) bool {
	cur := ns.epochSeq.Load()
	if seq == cur {
		return true
	}
	if seq > cur {
		return false
	}
	histp := ns.bumpHist.Load()
	if histp == nil {
		return false
	}
	hist := *histp
	for s := seq + 1; s <= cur; s++ {
		var sc *region.Rect
		found := false
		for i := len(hist) - 1; i >= 0; i-- {
			if hist[i].seq == s {
				sc, found = hist[i].scope, true
				break
			}
		}
		if !found || sc == nil || predIntersectsRect(p, *sc) {
			return false
		}
	}
	return true
}

// predIntersectsRect reports whether predicate p selects any point inside
// rect. A dimension rect constrains but p does not is unbounded in p, so
// it never separates them; a categorical condition intersects when any of
// its codes falls inside rect's interval on that attribute. This is the
// cache-side mirror of region.Rect.Intersects, evaluated against the
// predicate a cached answer was keyed by.
func predIntersectsRect(p relation.Predicate, rect region.Rect) bool {
	if rect.Empty() || p.Unsatisfiable() {
		return false
	}
	for i, a := range rect.Attrs {
		iv := rect.Ivs[i]
		// A dimension p leaves unconstrained never separates.
		for _, c := range p.Conditions() {
			if c.Attr != a {
				continue
			}
			if c.Cats != nil {
				hit := false
				for _, ci := range c.Cats {
					if iv.Contains(float64(ci)) {
						hit = true
						break
					}
				}
				if !hit {
					return false
				}
			} else if c.Iv.Intersect(iv).Empty() {
				return false
			}
			break
		}
	}
	return true
}

// keyIntersects decodes the predicate behind a source key — crawl sets
// drop their marker first — and reports whether it intersects rect. A key
// that fails to decode is conservatively treated as intersecting:
// over-dropping costs one re-query, under-dropping serves stale state.
func keyIntersects(key string, rect region.Rect) bool {
	k := strings.TrimPrefix(key, crawlKeyPrefix)
	p, ok := PredicateOfKey(k)
	if !ok {
		return true
	}
	return predIntersectsRect(p, rect)
}

// search implements the cache lookup protocol over the pool's shards: an
// exact resident entry answers immediately; a resident complete answer
// covering the predicate answers by client-side filtering; an identical
// in-flight search is joined; otherwise the caller becomes the leader,
// queries the inner database once and publishes the result.
func (ns *namespace) search(ctx context.Context, p relation.Predicate) (hidden.Result, error) {
	tr := obs.FromContext(ctx)
	tmKey := tr.Start(obs.StageCanonicalize)
	key := KeyOf(p)
	tmKey.End(obs.OutcomeOK)
	pkey := ns.prefix + key
	sh := ns.pool.shardFor(pkey)
	// The containment scan must not run under the shard mutex — it would
	// serialize every other lookup on the shard behind a directory walk.
	// It is attempted once, lock-free, after the first exact miss; the
	// loop then re-checks the shard, which may have gained the entry or an
	// in-flight leader in the meantime.
	triedContainment := ns.complete == nil
	for {
		// The pool-lookup span covers the exact-match probe; a coalesced
		// outcome additionally covers the wait on the leader's flight.
		tmLk := tr.Start(obs.StagePoolLookup)
		sh.mu.Lock()
		if res, ok := ns.lookupLocked(sh, pkey); ok {
			sh.mu.Unlock()
			tmLk.End(obs.OutcomeHit)
			ns.hits.Add(1)
			return res, nil
		}
		if !triedContainment {
			sh.mu.Unlock()
			tmLk.End(obs.OutcomeMiss)
			triedContainment = true
			tmC := tr.Start(obs.StageContainment)
			if res, winner, viaCrawl, ok := ns.complete.lookup(p, ns.ttl, ns.pool.now(), ns.systemK); ok {
				// Refresh the serving entry's LRU position: the complete
				// answer absorbing this traffic must not age out as cold.
				ns.touch(winner)
				if viaCrawl {
					tmC.EndAs(obs.StageCrawlSet, obs.OutcomeHit)
					ns.crawlHits.Add(1)
				} else {
					tmC.End(obs.OutcomeHit)
					ns.contained.Add(1)
				}
				return res, nil
			}
			tmC.End(obs.OutcomeMiss)
			continue
		}
		if fl, ok := sh.flights[pkey]; ok {
			sh.mu.Unlock()
			ns.coalesced.Add(1)
			select {
			case <-fl.done:
			case <-ctx.Done():
				tmLk.End(obs.OutcomeError)
				return hidden.Result{}, ctx.Err()
			}
			if fl.err == nil {
				tmLk.End(obs.OutcomeCoalesced)
				return copyResult(fl.res), nil
			}
			tmLk.End(obs.OutcomeError)
			// The leader failed. When it died with its own context
			// while ours is still live, retry as a fresh leader
			// rather than surfacing someone else's cancellation.
			if isContextErr(fl.err) && ctx.Err() == nil {
				continue
			}
			return hidden.Result{}, fl.err
		}
		fl := &flight{done: make(chan struct{})}
		sh.flights[pkey] = fl
		sh.mu.Unlock()
		tmLk.End(obs.OutcomeMiss)
		ns.misses.Add(1)
		seq := ns.epochSeq.Load()

		res, err := ns.inner.Search(ctx, p)
		fl.res, fl.err = res, err

		var (
			admitted bool
			victims  []victim
		)
		tmF := tr.Start(obs.StageEpochFence)
		sh.mu.Lock()
		delete(sh.flights, pkey)
		// The epoch gate: re-check the seq captured before the inner query
		// under the shard lock. adoptEpoch advances the seq before it
		// purges the shards, so either this insert sees the new seq and
		// must prove itself (admissibleAt: every bump since was scoped and
		// disjoint from p), or it inserted first and the purge removes it
		// when it intersects — a pre-change answer from a bumped region
		// can never survive the wipe. A degraded result (fabricated by the
		// resilience layer while the source was down) is served to the
		// waiting flight but never admitted: caching it would keep
		// answering with the fabrication after recovery.
		if err == nil && !res.Degraded && ns.admissibleAt(seq, p) {
			admitted, victims = ns.insertLocked(sh, pkey, res, ns.pool.now())
		}
		sh.mu.Unlock()
		switch {
		case err != nil:
			tmF.End(obs.OutcomeError)
		case admitted:
			tmF.End(obs.OutcomeOK)
		default:
			tmF.End(obs.OutcomeMiss)
		}
		close(fl.done)
		if err != nil {
			return hidden.Result{}, err
		}
		// Store I/O happens outside the shard lock. The persistent store
		// mirrors residency exactly: evicted keys are deleted from their
		// owners' stores, an admitted answer is written, and a replaced or
		// refused admission deletes any stale record left under this key —
		// otherwise a restart would warm back an answer memory already
		// replaced or dropped.
		if admitted {
			victims = append(victims, ns.pool.enforceGlobal(ns, pkey)...)
		}
		deleteVictims(victims)
		if ns.store != nil {
			if admitted {
				ns.persist(key, p, res, seq)
			} else {
				_ = ns.store.Delete(storeKey(key))
			}
		}
		return copyResult(res), nil
	}
}

// deleteVictims mirrors evictions onto the owning namespaces' stores.
func deleteVictims(victims []victim) {
	for _, v := range victims {
		if v.ns.store != nil {
			_ = v.ns.store.Delete(storeKey(v.key))
		}
	}
}

// admitCrawl publishes the complete match set of a crawled region as a
// containment-only entry (see Cache.AdmitCrawl). It takes ownership of
// tuples: the slice is sorted in place and retained as the cached set.
func (ns *namespace) admitCrawl(pred relation.Predicate, tuples []relation.Tuple, seq uint64) {
	if ns.complete == nil {
		return
	}
	sortTuplesByID(tuples)
	res := hidden.Result{Tuples: tuples}
	key := crawlKeyPrefix + KeyOf(pred)
	pkey := ns.prefix + key
	sh := ns.pool.shardFor(pkey)
	sh.mu.Lock()
	var (
		admitted bool
		victims  []victim
	)
	// The epoch gate (see search): a crawl that straddled a bump keeps
	// its set when every bump since it began was scoped and disjoint from
	// the crawled region — only straddling crawl sets are dropped.
	if ns.admissibleAt(seq, pred) {
		admitted, victims = ns.insertLocked(sh, pkey, res, ns.pool.now())
	}
	sh.mu.Unlock()
	if admitted {
		victims = append(victims, ns.pool.enforceGlobal(ns, pkey)...)
	}
	deleteVictims(victims)
	if ns.store != nil {
		if admitted {
			ns.persist(key, pred, res, seq)
		} else {
			_ = ns.store.Delete(storeKey(key))
		}
	}
}

// peek is the resident-only half of the lookup protocol: an exact
// resident entry, else a covering complete answer (containment or crawl).
// It never joins or starts a flight and never touches the inner database
// — the peer answer-cache protocol serves /cluster/get with it, so a
// lookup forwarded by another replica can only ever cost memory reads.
func (ns *namespace) peek(p relation.Predicate) (hidden.Result, bool) {
	return ns.peekFn(p, (*namespace).lookupLocked)
}

// peekShared is peek without the defensive tuple-slice copy on the
// resident path: the returned slice is owned by the cache and must not
// be mutated or retained. Entries are immutable once admitted
// (admission copies in, replacement swaps the whole result), so sharing
// is safe for a reader that only serializes — the peer serve paths,
// which would otherwise pay one slice copy per forwarded lookup just to
// throw it away.
func (ns *namespace) peekShared(p relation.Predicate) (hidden.Result, bool) {
	return ns.peekFn(p, (*namespace).lookupSharedLocked)
}

func (ns *namespace) peekFn(p relation.Predicate, lookup func(*namespace, *shard, string) (hidden.Result, bool)) (hidden.Result, bool) {
	key := KeyOf(p)
	pkey := ns.prefix + key
	sh := ns.pool.shardFor(pkey)
	sh.mu.Lock()
	res, ok := lookup(ns, sh, pkey)
	sh.mu.Unlock()
	if ok {
		ns.hits.Add(1)
		return res, true
	}
	if ns.complete != nil {
		if res, winner, viaCrawl, ok := ns.complete.lookup(p, ns.ttl, ns.pool.now(), ns.systemK); ok {
			ns.touch(winner)
			if viaCrawl {
				ns.crawlHits.Add(1)
			} else {
				ns.contained.Add(1)
			}
			return res, true
		}
	}
	return hidden.Result{}, false
}

// admitAt publishes an externally produced answer for p — the peer
// protocol's /cluster/put — exactly as if the inner database had just
// returned it: admission against the budget, containment registration,
// persistence. seq is the epoch the answer was produced under; a
// namespace that has moved past it drops the admission (the shard-lock
// re-check below). The result is copied; the caller keeps its slice.
func (ns *namespace) admitAt(p relation.Predicate, res hidden.Result, seq uint64) {
	key := KeyOf(p)
	pkey := ns.prefix + key
	sh := ns.pool.shardFor(pkey)
	sh.mu.Lock()
	var (
		admitted bool
		victims  []victim
	)
	if !res.Degraded && ns.admissibleAt(seq, p) { // see the epoch gate in search
		admitted, victims = ns.insertLocked(sh, pkey, copyResult(res), ns.pool.now())
	}
	sh.mu.Unlock()
	if admitted {
		victims = append(victims, ns.pool.enforceGlobal(ns, pkey)...)
	}
	deleteVictims(victims)
	if ns.store != nil {
		if admitted {
			ns.persist(key, p, res, seq)
		} else {
			_ = ns.store.Delete(storeKey(key))
		}
	}
}

// enforceGlobal evicts cold entries across every shard until the pool's
// global usage respects its limit, and returns the victims for store
// mirroring. Shards individually respecting their share keep the global
// sum bounded on their own; this pass exists for oversized entries, whose
// bytes are exempt from the shard share and budgeted globally instead.
// Must be called without any shard lock held. keep (a prefixed key) is
// never evicted — it is the entry whose admission created the pressure.
func (p *Pool) enforceGlobal(pressure *namespace, keep string) []victim {
	lim := p.acct.Limit()
	if lim < 0 || p.acct.Usage() <= lim {
		return nil
	}
	_, floor := p.limits()
	var victims []victim
	for _, sh := range p.shards {
		if p.acct.Usage() <= lim {
			break
		}
		sh.mu.Lock()
		for el := sh.lru.Back(); el != nil && p.acct.Usage() > lim; {
			prev := el.Prev()
			ce := el.Value.(*entry)
			switch {
			case ce.key == keep:
			case ce.ns != pressure && ce.ns.bytes.Load()-ce.size < floor:
				// floor-protected from foreign pressure
			default:
				victims = append(victims, victim{ns: ce.ns, key: ce.srcKey()})
				removeLocked(sh, el)
				ce.ns.evictions.Add(1)
				p.evictions.Add(1)
			}
			el = prev
		}
		sh.mu.Unlock()
	}
	return victims
}

// touch refreshes the LRU position of a resident entry by source key, if
// it is still resident. Used after containment hits, which serve traffic
// from an entry no exact lookup would otherwise refresh.
func (ns *namespace) touch(key string) {
	pkey := ns.prefix + key
	sh := ns.pool.shardFor(pkey)
	sh.mu.Lock()
	if el, ok := sh.elems[pkey]; ok {
		sh.lru.MoveToFront(el)
		el.Value.(*entry).hits++
	}
	sh.mu.Unlock()
}

// lookupLocked returns the resident result for a prefixed key, refreshing
// its LRU position. Expired entries are dropped and reported as absent;
// the caller's refill either overwrites or deletes the stale persisted
// record for the same key, so no store I/O is needed under the lock.
// Crawl-admitted entries live under 'R'-marked keys no canonical
// predicate key collides with, so an exact lookup never sees one.
func (ns *namespace) lookupLocked(sh *shard, pkey string) (hidden.Result, bool) {
	res, ok := ns.lookupSharedLocked(sh, pkey)
	if ok {
		res = copyResult(res)
	}
	return res, ok
}

// lookupSharedLocked is lookupLocked returning the entry's own tuple
// slice — see peekShared for the ownership contract.
func (ns *namespace) lookupSharedLocked(sh *shard, pkey string) (hidden.Result, bool) {
	el, ok := sh.elems[pkey]
	if !ok {
		return hidden.Result{}, false
	}
	e := el.Value.(*entry)
	if ns.ttl > 0 && ns.pool.now().Sub(e.storedAt) > ns.ttl {
		removeLocked(sh, el)
		ns.expired.Add(1)
		return hidden.Result{}, false
	}
	sh.lru.MoveToFront(el)
	e.hits++
	return e.res, true
}

// insertLocked adds (or replaces) an entry and evicts from the cold end
// until the shard respects its share of the global budget. An entry
// larger than a whole shard's share is admitted as oversized — budgeted
// against the global pool limit rather than refused, so a crawl-admitted
// region set bigger than budget/shards still enters; the caller must run
// Pool.enforceGlobal afterwards (outside the shard lock) to restore the
// global budget. Only an entry exceeding the whole pool limit is refused.
// Victims are chosen oldest-first, skipping entries whose owning
// namespace would fall below its floor under pressure from a *different*
// namespace — that is the borrowing contract: idle capacity is lent, the
// floor is not.
func (ns *namespace) insertLocked(sh *shard, pkey string, res hidden.Result, at time.Time) (admitted bool, victims []victim) {
	if el, ok := sh.elems[pkey]; ok {
		removeLocked(sh, el)
	}
	e := &entry{ns: ns, key: pkey, res: res, size: entrySize(pkey, res), storedAt: at}
	limit, floor := ns.pool.limits()
	if e.size > limit {
		if limit < 0 || e.size > ns.pool.acct.Limit() {
			return false, nil
		}
		e.oversized = true
		sh.over += e.size
	}
	sh.elems[pkey] = sh.lru.PushFront(e)
	sh.bytes += e.size
	ns.bytes.Add(e.size)
	ns.entries.Add(1)
	ns.pool.acct.Add(e.size)
	if ns.complete != nil {
		ns.complete.register(e.srcKey(), res, at)
	}
	// One cold-to-hot pass: evicting only shrinks namespace byte counts,
	// so an entry skipped as floor-protected stays protected and is never
	// worth revisiting. If the walk ends with only the new entry and
	// floor-protected foreigners left, the overshoot is tolerated rather
	// than the floor contract broken. Oversized bytes are exempt from the
	// shard share (they ride on the global budget via enforceGlobal), so
	// an oversized region set does not wipe the shard's normal entries.
	for el := sh.lru.Back(); el != nil && sh.bytes-sh.over > limit; {
		prev := el.Prev()
		ce := el.Value.(*entry)
		switch {
		case ce == e: // never evict the entry being admitted
		case ce.oversized:
			// Exempt from the shard share: evicting it cannot help this
			// loop's condition, so reclaiming it is enforceGlobal's job.
		case ce.ns != ns && ce.ns.bytes.Load()-ce.size < floor:
			// floor-protected from foreign pressure
		default:
			victims = append(victims, victim{ns: ce.ns, key: ce.srcKey()})
			removeLocked(sh, el)
			ce.ns.evictions.Add(1)
			ns.pool.evictions.Add(1)
		}
		el = prev
	}
	return true, victims
}

// removeLocked drops an element from its shard and unwinds all accounting.
func removeLocked(sh *shard, el *list.Element) {
	e := el.Value.(*entry)
	sh.lru.Remove(el)
	delete(sh.elems, e.key)
	sh.bytes -= e.size
	if e.oversized {
		sh.over -= e.size
	}
	e.ns.bytes.Add(-e.size)
	e.ns.entries.Add(-1)
	e.ns.pool.acct.Add(-e.size)
	if e.ns.complete != nil {
		e.ns.complete.unregister(e.srcKey())
	}
}

// stats snapshots the namespace counters.
func (ns *namespace) stats() Stats {
	st := Stats{
		Hits:            ns.hits.Load(),
		ContainmentHits: ns.contained.Load(),
		CrawlHits:       ns.crawlHits.Load(),
		Misses:          ns.misses.Load(),
		Coalesced:       ns.coalesced.Load(),
		Evictions:       ns.evictions.Load(),
		Expired:         ns.expired.Load(),
		Entries:         int(ns.entries.Load()),
		Bytes:           ns.bytes.Load(),
		Warmed:          ns.warmed,
		EpochSeq:        ns.epochSeq.Load(),
		EpochWipes:      ns.epochWipes.Load(),
		PartialWipes:    ns.partialWipes.Load(),
		WipeDropped:     ns.wipeDropped.Load(),
		WipeRetained:    ns.wipeRetained.Load(),
	}
	if ns.complete != nil {
		st.CompleteEntries, st.CrawlEntries = ns.complete.lens()
	}
	return st
}

// adoptEpoch moves the namespace to a newer source epoch and destroys
// the answers the transition invalidated. A full bump (Epoch.Scope nil)
// destroys everything produced under older epochs: the in-memory entries,
// the containment directory, and the persisted q/ and R/ records. A
// region-scoped bump adopted in order (exactly one seq ahead) wipes
// selectively instead: only entries and crawl sets whose predicate (via
// PredicateOfKey) intersects the bumped rect are dropped from the
// containment directory, the shards and the store — the rest of the
// namespace stays warm. A scoped bump that skips seqs escalates to a full
// wipe, because the skipped transitions' regions are unknown. adoptEpoch
// is the registry subscriber for this namespace, so both local
// change-detection bumps and cluster adoptions land here. Lower or equal
// epochs are ignored — wipes never run twice for one bump, and a stale
// remote epoch cannot wipe fresher state.
//
// Ordering under concurrent lookups: the transition is recorded in the
// bump history and the seq advanced (under adoptMu) before any purge,
// fencing admissions — every admission path re-checks admissibility under
// its shard lock, so either the check fails (or proves the answer's
// region disjoint from everything since) or it inserted first and the
// purge removes it. The containment directory is purged before the shards
// so a narrower predicate cannot be served from a complete answer whose
// shard entry is already being unwound. The store wipe runs last, under
// storeMu, which persist writes also take — a slow leader cannot
// re-persist an invalidated answer after the wipe. When adoptEpoch
// returns, no answer invalidated by the transition is reachable through
// any path.
func (ns *namespace) adoptEpoch(e epoch.Epoch) {
	ns.adoptMu.Lock()
	cur := ns.epochSeq.Load()
	if e.Seq <= cur {
		ns.adoptMu.Unlock()
		return
	}
	scope := e.Scope
	if scope != nil && e.Seq != cur+1 {
		// The scope describes only the final transition; adopting across
		// skipped seqs means unseen bumps whose regions are unknown.
		scope = nil
	}
	ns.pushBump(e.Seq, scope)
	ns.epochSeq.Store(e.Seq)
	ns.adoptMu.Unlock()
	if scope != nil {
		dropped, retained := ns.purgeResidentRegion(*scope)
		ns.partialWipes.Add(1)
		ns.wipeDropped.Add(dropped)
		ns.wipeRetained.Add(retained)
		if ns.store != nil {
			ns.storeMu.Lock()
			_ = ns.wipeRecordsRegion(*scope)
			_ = ns.writeMeta()
			ns.storeMu.Unlock()
		}
		return
	}
	ns.purgeResident()
	ns.epochWipes.Add(1)
	if ns.store != nil {
		ns.storeMu.Lock()
		_ = ns.wipeRecords()
		_ = ns.writeMeta()
		ns.storeMu.Unlock()
	}
}

// purgeResidentRegion drops the namespace's resident entries whose
// predicate intersects rect, from the containment directory first (same
// ordering rationale as purgeResident) and then the shards, and reports
// how many entries were dropped and how many survived. Keys that fail to
// decode are conservatively dropped.
func (ns *namespace) purgeResidentRegion(rect region.Rect) (dropped, retained int64) {
	if ns.complete != nil {
		ns.complete.purgeRegion(rect)
	}
	for _, sh := range ns.pool.shards {
		sh.mu.Lock()
		var drop []*list.Element
		for _, el := range sh.elems {
			e := el.Value.(*entry)
			if e.ns != ns {
				continue
			}
			if keyIntersects(e.srcKey(), rect) {
				drop = append(drop, el)
			} else {
				retained++
			}
		}
		for _, el := range drop {
			removeLocked(sh, el)
		}
		dropped += int64(len(drop))
		sh.mu.Unlock()
	}
	return dropped, retained
}

// hotPredicates returns up to max of the namespace's most-served resident
// predicates, hottest first (ties broken by key for determinism). Crawl
// sets count under their region predicate. This is the live traffic
// signal the change prober samples to place sentinels where reuse — and
// therefore staleness risk — is concentrated.
func (ns *namespace) hotPredicates(max int) []relation.Predicate {
	if max <= 0 {
		return nil
	}
	type hot struct {
		key  string
		p    relation.Predicate
		hits int64
	}
	var all []hot
	for _, sh := range ns.pool.shards {
		sh.mu.Lock()
		for _, el := range sh.elems {
			e := el.Value.(*entry)
			if e.ns != ns || e.hits == 0 {
				continue
			}
			k := strings.TrimPrefix(e.srcKey(), crawlKeyPrefix)
			if p, ok := PredicateOfKey(k); ok {
				all = append(all, hot{key: k, p: p, hits: e.hits})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].hits != all[j].hits {
			return all[i].hits > all[j].hits
		}
		return all[i].key < all[j].key
	})
	out := make([]relation.Predicate, 0, max)
	seen := make(map[string]bool, max)
	for _, h := range all {
		if seen[h.key] {
			continue // a crawl set and an exact answer share a predicate
		}
		seen[h.key] = true
		out = append(out, h.p)
		if len(out) == max {
			break
		}
	}
	return out
}

// purgeResident drops this namespace's resident entries from every shard
// and its containment directory. The directory goes first: a containment
// lookup runs lock-free against it, and must not win on an entry whose
// shard residency (and byte accounting) is already being unwound.
func (ns *namespace) purgeResident() {
	if ns.complete != nil {
		ns.complete.purge()
	}
	ns.purgeShards()
}

// purgeShards drops this namespace's resident entries from every shard.
func (ns *namespace) purgeShards() {
	for _, sh := range ns.pool.shards {
		sh.mu.Lock()
		var drop []*list.Element
		for _, el := range sh.elems {
			if el.Value.(*entry).ns == ns {
				drop = append(drop, el)
			}
		}
		for _, el := range drop {
			removeLocked(sh, el)
		}
		sh.mu.Unlock()
	}
}

// discard drops the exact resident entry for a source key and its
// persisted record, leaving every other entry alone. The cluster layer
// releases re-homed fallback copies with it.
func (ns *namespace) discard(key string) {
	pkey := ns.prefix + key
	sh := ns.pool.shardFor(pkey)
	sh.mu.Lock()
	if el, ok := sh.elems[pkey]; ok {
		removeLocked(sh, el)
	}
	sh.mu.Unlock()
	if ns.store != nil {
		ns.storeMu.Lock()
		_ = ns.store.Delete(storeKey(key))
		ns.storeMu.Unlock()
	}
}

// crawlKeyPrefix marks the cache key of a crawl-admitted region set. It
// cannot collide with canonical predicate keys, whose first byte is 'c',
// 'n' or absent, so the region's own (overflowing) top-k answer and its
// complete crawled set coexist under distinct keys.
const crawlKeyPrefix = "R"

// isCrawlKey reports whether a source key names a crawl-admitted set.
func isCrawlKey(key string) bool { return strings.HasPrefix(key, crawlKeyPrefix) }
