package qcache

import (
	"context"
	"testing"

	"repro/internal/hidden"
	"repro/internal/kvstore"
	"repro/internal/relation"
)

// regionTuples builds n tuples shaped like a crawled region match set.
func regionTuples(base int64, n int) []relation.Tuple {
	ts := make([]relation.Tuple, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, relation.Tuple{ID: base + int64(i), Values: []float64{float64(base) + float64(i), float64(i % 3)}})
	}
	return ts
}

// TestOversizedCrawlAdmission: a crawl-admitted region set larger than
// one shard's share of the pool budget (budget/shards) used to be refused
// outright; it is now budgeted against the global pool limit instead. A
// set larger than the whole pool is still refused.
func TestOversizedCrawlAdmission(t *testing.T) {
	const budget = 8 << 10 // 8 KiB budget, 4 shards -> 2 KiB shard share
	db := testDB(t, 400, 10)
	c, err := New(db, Config{MaxBytes: budget, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// ~4.9 KiB: over the 2 KiB shard share, under the 8 KiB pool budget.
	// This exact shape was refused before oversized budgeting.
	region := pricePred(0, 150)
	c.AdmitCrawl(region, regionTuples(0, 150))
	st := c.Stats()
	if st.CrawlEntries != 1 {
		t.Fatalf("oversized region set refused: %+v", st)
	}
	// The set serves in-region predicates with zero web-database queries.
	db.ResetQueryCount()
	res, err := c.Search(ctx, pricePred(10, 15))
	if err != nil {
		t.Fatal(err)
	}
	if db.QueryCount() != 0 {
		t.Fatalf("in-region predicate paid %d web queries", db.QueryCount())
	}
	if len(res.Tuples) != 6 || res.Overflow {
		t.Fatalf("crawl-served answer wrong: %d tuples, overflow %v", len(res.Tuples), res.Overflow)
	}
	if st = c.Stats(); st.CrawlHits != 1 {
		t.Fatalf("crawl hit not counted: %+v", st)
	}

	// A second oversized set pushes global usage past the budget; the
	// global enforcement pass evicts the cold one — the budget holds.
	c.AdmitCrawl(pricePred(200, 350), regionTuples(200, 150))
	st = c.Stats()
	if st.Bytes > budget {
		t.Fatalf("pool holds %d bytes over the %d budget", st.Bytes, budget)
	}
	if st.CrawlEntries != 1 {
		t.Fatalf("expected the cold oversized set evicted, kept %d", st.CrawlEntries)
	}

	// Larger than the whole pool: refused as before.
	c.AdmitCrawl(pricePred(0, 400), regionTuples(0, 300))
	if got := c.Stats().CrawlEntries; got != 1 {
		t.Fatalf("entry above the whole pool budget admitted (%d crawl entries)", got)
	}
}

// TestOversizedDoesNotWipeShardNeighbours: an oversized entry rides on
// the global budget; the normal entries sharing its shard keep their
// share instead of being evicted to make numeric room.
func TestOversizedDoesNotWipeShardNeighbours(t *testing.T) {
	const budget = 32 << 10
	ctx := context.Background()
	c4, err := New(testDB(t, 600, 10), Config{MaxBytes: budget, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		lo := float64(i * 20)
		if _, err := c4.Search(ctx, pricePred(lo, lo+5)); err != nil {
			t.Fatal(err)
		}
	}
	before := c4.Stats().Entries
	// ~9.7 KiB: above the 8 KiB shard share, well under 32 KiB globally —
	// admitted without evicting the small resident answers.
	c4.AdmitCrawl(pricePred(0, 300), regionTuples(0, 300))
	st := c4.Stats()
	if st.CrawlEntries != 1 {
		t.Fatalf("oversized set refused: %+v", st)
	}
	if st.Entries < before {
		t.Fatalf("oversized admission evicted neighbours: %d -> %d entries", before+1, st.Entries)
	}
	if st.Bytes > budget {
		t.Fatalf("budget exceeded: %d > %d", st.Bytes, budget)
	}
}

// TestPeekAndAdmit: the peer-protocol primitives. Peek answers from
// residency only; Admit installs an externally produced answer with full
// cache semantics (containment registration included) and copies its
// input.
func TestPeekAndAdmit(t *testing.T) {
	db := testDB(t, 200, 10)
	c, err := New(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p := pricePred(20, 28)

	if _, ok := c.Peek(p); ok {
		t.Fatal("peek hit on an empty cache")
	}
	if st := c.Stats(); st.Misses != 0 {
		t.Fatalf("peek miss counted as cache miss: %+v", st)
	}
	want, err := c.Search(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Peek(p)
	if !ok || len(got.Tuples) != len(want.Tuples) || got.Overflow != want.Overflow {
		t.Fatalf("peek after fill: ok=%v, %d/%v vs %d/%v", ok, len(got.Tuples), got.Overflow, len(want.Tuples), want.Overflow)
	}

	// Admit into a fresh cache: the answer serves searches and, being
	// complete, narrower predicates too — without any inner query.
	db2 := testDB(t, 200, 10)
	c2, err := New(db2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	admitRes := hidden.Result{Tuples: append([]relation.Tuple(nil), want.Tuples...), Overflow: want.Overflow}
	c2.Admit(p, admitRes)
	// The cache copied: clobbering the caller's slice changes nothing.
	admitRes.Tuples[0] = relation.Tuple{ID: -1, Values: []float64{0, 0}}
	res, err := c2.Search(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if db2.QueryCount() != 0 {
		t.Fatalf("admitted answer not served: %d inner queries", db2.QueryCount())
	}
	if res.Tuples[0].ID == -1 {
		t.Fatal("Admit retained the caller's slice")
	}
	narrower, err := c2.Search(ctx, pricePred(22, 25))
	if err != nil {
		t.Fatal(err)
	}
	if db2.QueryCount() != 0 {
		t.Fatal("containment over an admitted answer paid an inner query")
	}
	if len(narrower.Tuples) != 4 {
		t.Fatalf("containment answer wrong: %d tuples", len(narrower.Tuples))
	}
	if st := c2.Stats(); st.ContainmentHits != 1 || st.Hits != 1 {
		t.Fatalf("admit-path counters: %+v", st)
	}
}

// TestOversizedWarmRestartRespectsBudget: entries warmed from a
// persistent store settle against the global budget the same way runtime
// admissions do — an operator shrinking the budget across a restart (or
// any store larger than memory) must not yield a pool resident past its
// limit, and the oversized crawl set, being newest, survives the trim.
func TestOversizedWarmRestartRespectsBudget(t *testing.T) {
	const smallBudget = 16 << 10 // 4 shards -> 4 KiB share
	store := kvstore.NewMemory()
	ctx := context.Background()
	db := testDB(t, 400, 10)
	big, err := New(db, Config{MaxBytes: 1 << 20, Shards: 4, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	// ~7 KiB of normal answers, then a ~9.7 KiB crawl set (oversized
	// under the small budget): together past 16 KiB.
	for i := 0; i < 16; i++ {
		lo := float64(i * 12)
		if _, err := big.Search(ctx, pricePred(lo, lo+5)); err != nil {
			t.Fatal(err)
		}
	}
	big.AdmitCrawl(pricePred(0, 300), regionTuples(0, 300))

	// "Restart" with the shrunk budget: same store, fresh pool.
	warm, err := New(testDB(t, 400, 10), Config{MaxBytes: smallBudget, Shards: 4, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.Bytes > smallBudget {
		t.Fatalf("warm restart left %d bytes resident over the %d budget", st.Bytes, smallBudget)
	}
	if st.CrawlEntries != 1 {
		t.Fatalf("newest (crawl) entry did not survive the warm trim: %+v", st)
	}
	if st.Warmed == 0 {
		t.Fatalf("nothing warmed — test vacuous: %+v", st)
	}
}
