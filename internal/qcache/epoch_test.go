package qcache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/epoch"
	"repro/internal/hidden"
	"repro/internal/kvstore"
	"repro/internal/relation"
)

// verDB is a hidden database whose tuple values carry a version number —
// Values[1] is the version current when the search ran — so a test can
// tell at a glance which source epoch an answer came from.
type verDB struct {
	n, k    int
	version atomic.Int64
	schema  *relation.Schema
	queries atomic.Int64
}

func newVerDB(n, k int) *verDB {
	db := &verDB{
		n: n, k: k,
		schema: relation.MustSchema(
			relation.Attribute{Name: "price", Kind: relation.Numeric, Min: 0, Max: 1000, Resolution: 0.01},
			relation.Attribute{Name: "ver", Kind: relation.Numeric, Min: 0, Max: 1 << 20, Resolution: 1},
		),
	}
	db.version.Store(1)
	return db
}

func (d *verDB) Name() string             { return "verdb" }
func (d *verDB) Schema() *relation.Schema { return d.schema }
func (d *verDB) SystemK() int             { return d.k }

func (d *verDB) Search(ctx context.Context, p relation.Predicate) (hidden.Result, error) {
	d.queries.Add(1)
	v := float64(d.version.Load())
	var res hidden.Result
	for i := 0; i < d.n; i++ {
		t := relation.Tuple{ID: int64(i), Values: []float64{float64(i), v}}
		if !p.Match(t) {
			continue
		}
		if len(res.Tuples) == d.k {
			res.Overflow = true
			break
		}
		res.Tuples = append(res.Tuples, t)
	}
	return res, nil
}

func TestEpochBumpWipesNamespace(t *testing.T) {
	ctx := context.Background()
	reg := epoch.NewRegistry()
	store := kvstore.NewMemory()
	db := newVerDB(100, 200)
	c, err := New(db, Config{Store: store, Epochs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.EpochSeq(); got != 1 {
		t.Fatalf("boot epoch = %d, want 1", got)
	}
	// Fill: a broad complete answer, a narrower exact entry, a crawl set.
	if _, err := c.Search(ctx, pricePred(0, 90)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(ctx, pricePred(92, 95)); err != nil {
		t.Fatal(err)
	}
	c.AdmitCrawl(pricePred(200, 300), nil)
	if st := c.Stats(); st.Entries != 3 || st.CompleteEntries == 0 || st.CrawlEntries != 1 {
		t.Fatalf("pre-bump stats = %+v", st)
	}

	db.version.Store(2)
	reg.Bump("verdb")

	if got := c.EpochSeq(); got != 2 {
		t.Fatalf("post-bump epoch = %d, want 2", got)
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.CompleteEntries != 0 || st.CrawlEntries != 0 {
		t.Fatalf("bump left residue: %+v", st)
	}
	if st.EpochWipes != 1 {
		t.Fatalf("epoch wipes = %d, want 1", st.EpochWipes)
	}
	if store.Len() != 1 { // only the meta record survives
		t.Fatalf("store has %d records after wipe, want 1 (meta)", store.Len())
	}
	// Post-bump searches see only version-2 data and re-enter the cache.
	res, err := c.Search(ctx, pricePred(0, 90))
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range res.Tuples {
		if tu.Values[1] != 2 {
			t.Fatalf("post-bump search served version-%v tuple", tu.Values[1])
		}
	}

	// A restart resumes the epoch lineage from the store.
	c2, err := New(newVerDB(100, 200), Config{Store: store, Epochs: epoch.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.EpochSeq(); got != 2 {
		t.Fatalf("restarted epoch = %d, want 2", got)
	}
	if st := c2.Stats(); st.Warmed != 1 {
		t.Fatalf("restart warmed %d entries, want the 1 post-bump answer", st.Warmed)
	}
}

// TestEpochRegistryAheadOfStoreWipesWarmedEntries is the "replica was
// down during a bump" case: the registry already knows a higher epoch
// when the namespace registers, so the freshly warmed store is stale and
// must be wiped at registration.
func TestEpochRegistryAheadOfStoreWipesWarmedEntries(t *testing.T) {
	ctx := context.Background()
	store := kvstore.NewMemory()
	db := newVerDB(50, 100)
	c, err := New(db, Config{Store: store, Epochs: epoch.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(ctx, pricePred(0, 20)); err != nil {
		t.Fatal(err)
	}

	reg := epoch.NewRegistry()
	reg.Observe("verdb", 5) // the cluster moved on while we were down
	c2, err := New(newVerDB(50, 100), Config{Store: store, Epochs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.EpochSeq(); got != 5 {
		t.Fatalf("epoch = %d, want the registry's 5", got)
	}
	if st := c2.Stats(); st.Entries != 0 {
		t.Fatalf("stale warmed entries survived registration: %+v", st)
	}
}

// TestSelectivePersistenceWipe restarts a pool-backed deployment after
// one source's schema changed: only that namespace's store is wiped;
// the sibling's q/ and R/ records survive and re-enter the containment
// directory.
func TestSelectivePersistenceWipe(t *testing.T) {
	ctx := context.Background()
	storeA, storeB := kvstore.NewMemory(), kvstore.NewMemory()

	pool := NewPool(PoolConfig{})
	a, err := pool.Namespace("a", testDB(t, 100, 50), Config{Store: storeA})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Namespace("b", testDB(t, 80, 50), Config{Store: storeB})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*Cache{a, b} {
		if _, err := c.Search(ctx, pricePred(0, 30)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Search(ctx, pricePred(40, 45)); err != nil {
			t.Fatal(err)
		}
		c.AdmitCrawl(pricePred(200, 300), nil)
	}
	if storeA.Len() != 4 || storeB.Len() != 4 { // meta + 2 answers + 1 crawl set
		t.Fatalf("store sizes = %d / %d, want 4 / 4", storeA.Len(), storeB.Len())
	}

	// Restart. Source a changed its schema surface (a different
	// system-k); source b is unchanged.
	pool2 := NewPool(PoolConfig{})
	a2, err := pool2.Namespace("a", testDB(t, 100, 25), Config{Store: storeA})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := pool2.Namespace("b", testDB(t, 80, 50), Config{Store: storeB})
	if err != nil {
		t.Fatal(err)
	}
	if st := a2.Stats(); st.Warmed != 0 || st.Entries != 0 {
		t.Fatalf("changed namespace warmed stale entries: %+v", st)
	}
	if storeA.Len() != 1 {
		t.Fatalf("changed namespace store holds %d records, want 1 (meta)", storeA.Len())
	}
	if a2.EpochSeq() != 2 {
		t.Fatalf("changed namespace epoch = %d, want 2 (advanced past the stored 1)", a2.EpochSeq())
	}
	st := b2.Stats()
	if st.Warmed != 3 || st.Entries != 3 {
		t.Fatalf("sibling namespace lost warmth: %+v", st)
	}
	if st.CompleteEntries == 0 || st.CrawlEntries != 1 {
		t.Fatalf("sibling containment directory not rebuilt: %+v", st)
	}
	if b2.EpochSeq() != 1 {
		t.Fatalf("sibling epoch = %d, want 1", b2.EpochSeq())
	}
	// The sibling's warm complete answer serves a narrower predicate
	// with zero inner queries.
	inner := b2.ns.inner.(*hidden.Local)
	before := inner.QueryCount()
	if _, err := b2.Search(ctx, pricePred(5, 10)); err != nil {
		t.Fatal(err)
	}
	if inner.QueryCount() != before {
		t.Fatal("warm containment answer still cost an inner query after restart")
	}
}

// TestEpochWipeRace hammers lookups — exact hits, containment hits and
// fresh leader admissions — while an epoch bump wipes the namespace,
// asserting (under -race) that the byte accounting and the containment
// directory are consistent and that no search started after the bump
// returned ever serves a pre-change answer.
func TestEpochWipeRace(t *testing.T) {
	ctx := context.Background()
	reg := epoch.NewRegistry()
	db := newVerDB(60, 100)
	c, err := New(db, Config{Epochs: reg, Store: kvstore.NewMemory()})
	if err != nil {
		t.Fatal(err)
	}
	// Seed the broad complete answer every narrower predicate is served
	// from — the containment path a sloppy wipe would leave dangling.
	if _, err := c.Search(ctx, pricePred(0, 59)); err != nil {
		t.Fatal(err)
	}

	var (
		bumped  atomic.Bool // set only after Bump returned
		stop    atomic.Bool
		wg      sync.WaitGroup
		failMu  sync.Mutex
		failure string
	)
	fail := func(format string, args ...any) {
		failMu.Lock()
		if failure == "" {
			failure = fmt.Sprintf(format, args...)
		}
		failMu.Unlock()
		stop.Store(true)
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				lo := float64((g*7 + i) % 50)
				pred := pricePred(lo, lo+5)
				// The check flag must be read BEFORE the lookup: if the
				// bump completed before we started, the answer must be
				// post-change.
				mustBeFresh := bumped.Load()
				var res hidden.Result
				var err error
				if i%3 == 0 {
					var ok bool
					res, ok = c.Peek(pred)
					if !ok {
						continue
					}
				} else {
					res, err = c.Search(ctx, pred)
					if err != nil {
						fail("search: %v", err)
						return
					}
				}
				if mustBeFresh {
					for _, tu := range res.Tuples {
						if tu.Values[1] != 2 {
							fail("stale version-%v answer served after the bump completed", tu.Values[1])
							return
						}
					}
				}
			}
		}(g)
	}

	time.Sleep(5 * time.Millisecond)
	db.version.Store(2)
	reg.Bump("verdb")
	bumped.Store(true)
	time.Sleep(10 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if failure != "" {
		t.Fatal(failure)
	}
	// The accounting survived the concurrent wipe: residual entries are
	// all post-bump, and bytes match what a fresh walk would count.
	st := c.Stats()
	if st.Bytes < 0 || (st.Entries == 0) != (st.Bytes == 0) {
		t.Fatalf("inconsistent accounting after concurrent wipe: %+v", st)
	}
	if st.EpochSeq != 2 || st.EpochWipes != 1 {
		t.Fatalf("epoch counters = seq %d wipes %d, want 2 / 1", st.EpochSeq, st.EpochWipes)
	}
	// Post-quiesce, every resident answer is version 2.
	for lo := 0.0; lo < 50; lo += 5 {
		if res, ok := c.Peek(pricePred(lo, lo+4)); ok {
			for _, tu := range res.Tuples {
				if tu.Values[1] != 2 {
					t.Fatalf("pre-change tuple resident after wipe (version %v)", tu.Values[1])
				}
			}
		}
	}
}

// TestDiscardDropsExactEntryOnly covers the re-homing release primitive.
func TestDiscardDropsExactEntryOnly(t *testing.T) {
	ctx := context.Background()
	store := kvstore.NewMemory()
	c, err := New(testDB(t, 100, 50), Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(ctx, pricePred(0, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(ctx, pricePred(20, 30)); err != nil {
		t.Fatal(err)
	}
	c.Discard(pricePred(0, 10))
	if c.Len() != 1 {
		t.Fatalf("len = %d after discard, want 1", c.Len())
	}
	if _, ok := c.Peek(pricePred(0, 10)); ok {
		t.Fatal("discarded entry still resident")
	}
	if _, ok := c.Peek(pricePred(20, 30)); !ok {
		t.Fatal("discard removed an unrelated entry")
	}
	if store.Len() != 2 { // meta + the surviving answer
		t.Fatalf("store has %d records, want 2", store.Len())
	}
}
