package qcache

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hidden"
	"repro/internal/kvstore"
	"repro/internal/relation"
)

// testSchema is a two-attribute schema: numeric price, categorical color.
func testSchema() *relation.Schema {
	return relation.MustSchema(
		relation.Attribute{Name: "price", Kind: relation.Numeric, Min: 0, Max: 1000},
		relation.Attribute{Name: "color", Kind: relation.Categorical, Categories: []string{"red", "green", "blue"}},
	)
}

// testDB builds a small hidden database: n tuples with price i and color
// i%3, system-ranked by ascending price.
func testDB(t testing.TB, n, systemK int) *hidden.Local {
	t.Helper()
	rel := relation.NewRelation("test", testSchema())
	for i := 0; i < n; i++ {
		rel.MustAppend(relation.Tuple{ID: int64(i), Values: []float64{float64(i), float64(i % 3)}})
	}
	db, err := hidden.NewLocal("test", rel, systemK, func(tu relation.Tuple) float64 { return tu.Values[0] })
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func pricePred(lo, hi float64) relation.Predicate {
	return relation.Predicate{}.WithInterval(0, relation.Closed(lo, hi))
}

func TestKeyCanonical(t *testing.T) {
	// Construction order must not matter.
	a := relation.Predicate{}.
		WithInterval(0, relation.Closed(10, 20)).
		WithCategories(1, []int{2, 0})
	b := relation.Predicate{}.
		WithCategories(1, []int{0, 2, 0}).
		WithInterval(0, relation.Closed(10, 20))
	if KeyOf(a) != KeyOf(b) {
		t.Fatal("equivalent predicates key differently")
	}
	// A full interval constrains nothing.
	c := pricePred(10, 20).WithInterval(5, relation.Full())
	if KeyOf(c) != KeyOf(pricePred(10, 20)) {
		t.Fatal("full-interval condition changed the key")
	}
	// Negative zero collapses onto positive zero.
	if KeyOf(pricePred(math.Copysign(0, -1), 20)) != KeyOf(pricePred(0, 20)) {
		t.Fatal("-0 and +0 bounds key differently")
	}
	// Distinct predicates must not collide.
	distinct := []relation.Predicate{
		{},
		pricePred(10, 20),
		pricePred(10, 21),
		pricePred(10, 20).WithCategories(1, []int{0}),
		pricePred(10, 20).WithCategories(1, []int{1}),
		relation.Predicate{}.WithInterval(0, relation.OpenLo(10, 20)),
		relation.Predicate{}.WithCategories(1, []int{0, 1, 2}),
	}
	seen := map[string]int{}
	for i, p := range distinct {
		k := KeyOf(p)
		if j, dup := seen[k]; dup {
			t.Fatalf("predicates %d and %d share key %q", i, j, k)
		}
		seen[k] = i
	}
}

func TestSearchDecoratesAndCounts(t *testing.T) {
	db := testDB(t, 100, 10)
	c, err := New(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p := pricePred(5, 50)
	want, err := db.Search(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	db.ResetQueryCount()

	got, err := c.Search(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != len(want.Tuples) || got.Overflow != want.Overflow {
		t.Fatalf("cached search differs: %d tuples overflow=%v, want %d overflow=%v",
			len(got.Tuples), got.Overflow, len(want.Tuples), want.Overflow)
	}
	for i := range got.Tuples {
		if got.Tuples[i].ID != want.Tuples[i].ID {
			t.Fatalf("tuple %d: ID %d, want %d", i, got.Tuples[i].ID, want.Tuples[i].ID)
		}
	}
	if db.QueryCount() != 1 {
		t.Fatalf("first search issued %d inner queries, want 1", db.QueryCount())
	}
	// Repeat: served from cache, inner untouched.
	if _, err := c.Search(ctx, p); err != nil {
		t.Fatal(err)
	}
	if db.QueryCount() != 1 {
		t.Fatalf("repeat search issued %d inner queries, want 1", db.QueryCount())
	}
	// Same filter built differently still hits.
	same := relation.Predicate{}.WithInterval(0, relation.Closed(5, 50)).WithInterval(5, relation.Full())
	if _, err := c.Search(ctx, same); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 hits, 1 miss, 1 entry", st)
	}
	if st.HitRate() < 0.6 {
		t.Fatalf("hit rate %.2f", st.HitRate())
	}
}

func TestCallerCannotCorruptCache(t *testing.T) {
	db := testDB(t, 50, 10)
	c, err := New(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := c.Search(ctx, pricePred(0, 40))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Tuples {
		res.Tuples[i] = relation.Tuple{ID: -1}
	}
	again, err := c.Search(ctx, pricePred(0, 40))
	if err != nil {
		t.Fatal(err)
	}
	if again.Tuples[0].ID == -1 {
		t.Fatal("caller mutation leaked into the cache")
	}
}

func TestTTLExpiry(t *testing.T) {
	db := testDB(t, 100, 10)
	c, err := New(db, Config{TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	c.setClock(func() time.Time { return now })
	ctx := context.Background()
	if _, err := c.Search(ctx, pricePred(0, 10)); err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Second)
	if _, err := c.Search(ctx, pricePred(0, 10)); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("entry expired too early: %+v", st)
	}
	now = now.Add(2 * time.Minute)
	if _, err := c.Search(ctx, pricePred(0, 10)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Expired != 1 || st.Misses != 2 {
		t.Fatalf("stats after expiry = %+v, want 1 expired, 2 misses", st)
	}
	if db.QueryCount() != 2 {
		t.Fatalf("inner queries = %d, want 2", db.QueryCount())
	}
}

func TestByteBudgetEvicts(t *testing.T) {
	db := testDB(t, 1000, 20)
	// Room for only a handful of 20-tuple results in one shard.
	c, err := New(db, Config{MaxBytes: 4096, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const searches = 50
	for i := 0; i < searches; i++ {
		if _, err := c.Search(ctx, pricePred(float64(i*10), float64(i*10+200))); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget: %+v", 4096, st)
	}
	if st.Bytes > 4096 {
		t.Fatalf("resident bytes %d exceed budget", st.Bytes)
	}
	if st.Entries >= searches {
		t.Fatalf("all %d entries resident despite budget", st.Entries)
	}
	// The most recent search must still be resident.
	db.ResetQueryCount()
	last := searches - 1
	if _, err := c.Search(ctx, pricePred(float64(last*10), float64(last*10+200))); err != nil {
		t.Fatal(err)
	}
	if db.QueryCount() != 0 {
		t.Fatal("most recently used entry was evicted")
	}
}

// blockingDB parks every Search until release is closed, so a test can
// hold many identical searches in flight at once.
type blockingDB struct {
	schema  *relation.Schema
	release chan struct{}
	started chan struct{} // one token per Search that entered
	calls   atomic.Int64
}

func (b *blockingDB) Name() string             { return "blocking" }
func (b *blockingDB) Schema() *relation.Schema { return b.schema }
func (b *blockingDB) SystemK() int             { return 10 }

func (b *blockingDB) Search(ctx context.Context, p relation.Predicate) (hidden.Result, error) {
	b.calls.Add(1)
	b.started <- struct{}{}
	select {
	case <-b.release:
	case <-ctx.Done():
		return hidden.Result{}, ctx.Err()
	}
	return hidden.Result{Tuples: []relation.Tuple{{ID: 42, Values: []float64{1, 0}}}}, nil
}

func TestCoalescing(t *testing.T) {
	inner := &blockingDB{
		schema:  testSchema(),
		release: make(chan struct{}),
		started: make(chan struct{}, 64),
	}
	c, err := New(inner, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const users = 16
	var wg sync.WaitGroup
	results := make([]hidden.Result, users)
	errs := make([]error, users)
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Search(ctx, pricePred(0, 100))
		}(i)
	}
	// Wait for the leader to reach the inner database, give the other
	// goroutines time to join its flight, then release.
	<-inner.started
	deadline := time.After(5 * time.Second)
	for c.Stats().Coalesced < users-1 {
		select {
		case <-deadline:
			t.Fatalf("only %d searches coalesced", c.Stats().Coalesced)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(inner.release)
	wg.Wait()
	for i := 0; i < users; i++ {
		if errs[i] != nil {
			t.Fatalf("user %d: %v", i, errs[i])
		}
		if len(results[i].Tuples) != 1 || results[i].Tuples[0].ID != 42 {
			t.Fatalf("user %d got %+v", i, results[i])
		}
	}
	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("%d identical concurrent searches reached the database, want 1", got)
	}
	st := c.Stats()
	if st.Coalesced != users-1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want %d coalesced, 1 miss", st, users-1)
	}
}

func TestWaiterRetriesAfterLeaderCancelled(t *testing.T) {
	inner := &blockingDB{
		schema:  testSchema(),
		release: make(chan struct{}),
		started: make(chan struct{}, 4),
	}
	c, err := New(inner, Config{})
	if err != nil {
		t.Fatal(err)
	}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.Search(leaderCtx, pricePred(0, 100))
		leaderDone <- err
	}()
	<-inner.started
	waiterDone := make(chan error, 1)
	go func() {
		_, err := c.Search(context.Background(), pricePred(0, 100))
		waiterDone <- err
	}()
	// Let the waiter join the flight, then kill the leader; the waiter
	// must become the new leader and succeed.
	deadline := time.After(5 * time.Second)
	for c.Stats().Coalesced < 1 {
		select {
		case <-deadline:
			t.Fatal("waiter never joined the flight")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancelLeader()
	if err := <-leaderDone; err == nil {
		t.Fatal("cancelled leader reported success")
	}
	<-inner.started // the waiter's own retry reached the database
	close(inner.release)
	if err := <-waiterDone; err != nil {
		t.Fatalf("waiter inherited the leader's cancellation: %v", err)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	db := testDB(t, 100, 10)
	flaky := &hidden.Flaky{Inner: db, FailEvery: 1} // first call fails
	c, err := New(flaky, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Search(ctx, pricePred(0, 10)); err == nil {
		t.Fatal("injected failure swallowed")
	}
	flaky.FailEvery = 0
	if _, err := c.Search(ctx, pricePred(0, 10)); err != nil {
		t.Fatalf("search after transient failure: %v", err)
	}
	if st := c.Stats(); st.Entries != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 1 entry from 2 misses", st)
	}
}

func TestConcurrentStress(t *testing.T) {
	db := testDB(t, 2000, 25)
	c, err := New(db, Config{MaxBytes: 32 << 10, TTL: time.Hour, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	oracle := testDB(t, 2000, 25)
	ctx := context.Background()
	const (
		goroutines = 16
		iters      = 200
		preds      = 40
	)
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := (g*7 + i) % preds
				p := pricePred(float64(n*40), float64(n*40+300))
				got, err := c.Search(ctx, p)
				if err != nil {
					errc <- err
					return
				}
				want, err := oracle.Search(ctx, p)
				if err != nil {
					errc <- err
					return
				}
				if len(got.Tuples) != len(want.Tuples) || got.Overflow != want.Overflow {
					errc <- fmt.Errorf("goroutine %d iter %d: %d tuples, want %d",
						g, i, len(got.Tuples), len(want.Tuples))
					return
				}
				for j := range got.Tuples {
					if got.Tuples[j].ID != want.Tuples[j].ID {
						errc <- fmt.Errorf("goroutine %d iter %d tuple %d: ID %d, want %d",
							g, i, j, got.Tuples[j].ID, want.Tuples[j].ID)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits+st.Misses+st.Coalesced != goroutines*iters {
		t.Fatalf("lookups unaccounted for: %+v", st)
	}
	if st.Hits == 0 || st.Evictions == 0 {
		t.Fatalf("stress run exercised no hits or no evictions: %+v", st)
	}
	if st.Bytes > 32<<10 {
		t.Fatalf("resident bytes %d exceed budget", st.Bytes)
	}
	// The database saw only misses, never hits or coalesced waiters.
	if db.QueryCount() != st.Misses {
		t.Fatalf("inner queries %d != misses %d", db.QueryCount(), st.Misses)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	store := kvstore.NewMemory()
	db := testDB(t, 200, 10)
	c1, err := New(db, Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := c1.Search(ctx, pricePred(float64(i*20), float64(i*20+50))); err != nil {
			t.Fatal(err)
		}
	}

	// A new cache over the same store and an equivalent source boots warm.
	db2 := testDB(t, 200, 10)
	c2, err := New(db2, Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Warmed != 5 || st.Entries != 5 {
		t.Fatalf("warm boot stats = %+v, want 5 warmed entries", st)
	}
	got, err := c2.Search(ctx, pricePred(0, 50))
	if err != nil {
		t.Fatal(err)
	}
	if db2.QueryCount() != 0 {
		t.Fatal("warm entry did not absorb the search")
	}
	want, err := db.Search(ctx, pricePred(0, 50))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("persisted result has %d tuples, want %d", len(got.Tuples), len(want.Tuples))
	}
	for i := range got.Tuples {
		if got.Tuples[i].ID != want.Tuples[i].ID || got.Tuples[i].Values[0] != want.Tuples[i].Values[0] {
			t.Fatalf("persisted tuple %d differs: %+v vs %+v", i, got.Tuples[i], want.Tuples[i])
		}
	}
}

func TestFingerprintInvalidation(t *testing.T) {
	store := kvstore.NewMemory()
	c1, err := New(testDB(t, 200, 10), Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c1.Search(ctx, pricePred(0, 50)); err != nil {
		t.Fatal(err)
	}
	if store.Len() < 2 { // fingerprint + one entry
		t.Fatalf("store holds %d records", store.Len())
	}
	// Same data, different system-k: every cached answer is wrong now.
	c2, err := New(testDB(t, 200, 25), Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Warmed != 0 || st.Entries != 0 {
		t.Fatalf("stale store survived a fingerprint change: %+v", st)
	}
	if store.Len() != 1 { // only the new fingerprint
		t.Fatalf("stale records not wiped: %d left", store.Len())
	}
}

func TestPersistenceExpiredEntriesDropped(t *testing.T) {
	store := kvstore.NewMemory()
	db := testDB(t, 200, 10)
	c1, err := New(db, Config{Store: store, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(5000, 0)
	c1.setClock(func() time.Time { return base })
	if _, err := c1.Search(context.Background(), pricePred(0, 50)); err != nil {
		t.Fatal(err)
	}
	// Reopen under the real clock: the record stored at Unix(5000) is
	// decades past its one-minute TTL and must be dropped, not warmed.
	c2, err := New(testDB(t, 200, 10), Config{Store: store, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Warmed != 0 {
		t.Fatalf("expired record warmed the cache: %+v", st)
	}
}

func TestPersistentStoreRespectsBudget(t *testing.T) {
	store := kvstore.NewMemory()
	db := testDB(t, 1000, 20)
	c, err := New(db, Config{MaxBytes: 4096, Shards: 1, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		if _, err := c.Search(ctx, pricePred(float64(i*10), float64(i*10+200))); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("budget never forced an eviction: %+v", st)
	}
	// The store mirrors residency: one record per resident entry plus
	// the fingerprint — evicted and unadmitted answers must not pile up.
	if store.Len() != st.Entries+1 {
		t.Fatalf("store holds %d records for %d resident entries", store.Len(), st.Entries)
	}
	// A reopened cache under the same budget warms exactly the stored set.
	c2, err := New(testDB(t, 1000, 20), Config{MaxBytes: 4096, Shards: 1, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Stats().Warmed; got != st.Entries {
		t.Fatalf("warmed %d entries, want %d", got, st.Entries)
	}
}

func TestPurge(t *testing.T) {
	store := kvstore.NewMemory()
	db := testDB(t, 100, 10)
	c, err := New(db, Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Search(ctx, pricePred(0, 50)); err != nil {
		t.Fatal(err)
	}
	if err := c.Purge(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("entries survived Purge")
	}
	if store.Len() != 0 {
		t.Fatalf("store holds %d records after Purge", store.Len())
	}
	if _, err := c.Search(ctx, pricePred(0, 50)); err != nil {
		t.Fatal(err)
	}
	if db.QueryCount() != 2 {
		t.Fatalf("inner queries = %d, want 2 (purge forced a refill)", db.QueryCount())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil inner accepted")
	}
	if _, err := New(testDB(t, 10, 5), Config{TTL: -time.Second}); err == nil {
		t.Fatal("negative TTL accepted")
	}
}

// TestPredicateOfKeyRoundTrip: the canonical key decodes back to a
// predicate with the identical canonical key.
func TestPredicateOfKeyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 2000; i++ {
		var p relation.Predicate
		for a := 0; a < 4; a++ {
			switch r.Intn(3) {
			case 0:
			case 1:
				lo := r.Float64()*100 - 50
				p = p.WithInterval(a, relation.Interval{
					Lo: lo, Hi: lo + r.Float64()*40,
					LoOpen: r.Intn(2) == 0, HiOpen: r.Intn(2) == 0,
				})
			case 2:
				cats := make([]int, 1+r.Intn(4))
				for j := range cats {
					cats[j] = r.Intn(6)
				}
				p = p.WithCategories(a, cats)
			}
		}
		key := KeyOf(p)
		back, ok := PredicateOfKey(key)
		if !ok {
			t.Fatalf("trial %d: key %q did not decode", i, key)
		}
		if KeyOf(back) != key {
			t.Fatalf("trial %d: round trip changed key", i)
		}
	}
	if _, ok := PredicateOfKey("x-garbage"); ok {
		t.Fatal("garbage key decoded")
	}
}

// TestContainmentReuse: a complete answer serves a strictly narrower
// predicate without touching the inner database.
func TestContainmentReuse(t *testing.T) {
	db := testDB(t, 100, 40) // [100, 140) has 40 tuples: complete, not overflowing... see below
	c, err := New(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// [10, 40] matches 31 tuples < systemK 40: complete.
	broad := pricePred(10, 40)
	if res, err := c.Search(ctx, broad); err != nil || res.Overflow {
		t.Fatalf("broad fill: %v overflow=%v", err, res.Overflow)
	}
	before := db.QueryCount()
	narrow := pricePred(15, 25)
	got, err := c.Search(ctx, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if db.QueryCount() != before {
		t.Fatalf("containment hit still queried the web database (%d -> %d)", before, db.QueryCount())
	}
	want, err := db.Search(ctx, narrow)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != len(want.Tuples) || got.Overflow != want.Overflow {
		t.Fatalf("containment answer differs: %d/%v vs %d/%v",
			len(got.Tuples), got.Overflow, len(want.Tuples), want.Overflow)
	}
	for i := range want.Tuples {
		if got.Tuples[i].ID != want.Tuples[i].ID {
			t.Fatalf("tuple %d: ID %d vs %d", i, got.Tuples[i].ID, want.Tuples[i].ID)
		}
	}
	st := c.Stats()
	if st.ContainmentHits != 1 || st.CompleteEntries == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() <= 0 {
		t.Fatalf("containment hits must count into the hit rate: %+v", st)
	}
}

// TestContainmentNotUsedForOverflowingAnswers: a truncated answer must
// never serve a narrower predicate.
func TestContainmentNotUsedForOverflowingAnswers(t *testing.T) {
	db := testDB(t, 100, 10)
	c, err := New(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	broad := pricePred(0, 90) // 91 matches >> systemK 10: overflow
	if res, err := c.Search(ctx, broad); err != nil || !res.Overflow {
		t.Fatalf("broad fill: %v overflow=%v", err, res.Overflow)
	}
	before := db.QueryCount()
	// The narrower range [50, 60] has matches the truncated answer lacks.
	got, err := c.Search(ctx, pricePred(50, 60))
	if err != nil {
		t.Fatal(err)
	}
	if db.QueryCount() == before {
		t.Fatal("narrower predicate served from a truncated answer")
	}
	if len(got.Tuples) != 10 {
		t.Fatalf("got %d tuples", len(got.Tuples))
	}
	if st := c.Stats(); st.ContainmentHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestContainmentReuseProperty: for random base regions whose answer is
// complete, every random strictly narrower predicate (numeric and
// categorical narrowing) is answered with zero web-database queries and
// byte-identical results to a direct query.
func TestContainmentReuseProperty(t *testing.T) {
	db := testDB(t, 500, 60)
	truth := testDB(t, 500, 60) // identical twin: the uncached oracle
	c, err := New(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	r := rand.New(rand.NewSource(47))
	reused := 0
	for trial := 0; trial < 200; trial++ {
		lo := r.Float64() * 450
		width := r.Float64() * 55 // <= 55 matching tuples: usually complete
		base := pricePred(lo, lo+width)
		res, err := c.Search(ctx, base)
		if err != nil {
			t.Fatal(err)
		}
		if res.Overflow {
			continue
		}
		// Narrow numerically and, on odd trials, categorically too.
		nlo := lo + r.Float64()*width/2
		nhi := nlo + r.Float64()*(lo+width-nlo)
		narrow := pricePred(nlo, nhi)
		if trial%2 == 1 {
			narrow = narrow.WithCategories(1, []int{r.Intn(3), r.Intn(3)})
		}
		before := db.QueryCount()
		got, err := c.Search(ctx, narrow)
		if err != nil {
			t.Fatal(err)
		}
		if db.QueryCount() != before {
			t.Fatalf("trial %d: narrower predicate paid a web query", trial)
		}
		reused++
		want, err := truth.Search(ctx, narrow)
		if err != nil {
			t.Fatal(err)
		}
		if got.Overflow != want.Overflow || len(got.Tuples) != len(want.Tuples) {
			t.Fatalf("trial %d: %d/%v vs direct %d/%v", trial,
				len(got.Tuples), got.Overflow, len(want.Tuples), want.Overflow)
		}
		for i := range want.Tuples {
			if got.Tuples[i].ID != want.Tuples[i].ID {
				t.Fatalf("trial %d tuple %d: ID %d vs %d", trial, i, got.Tuples[i].ID, want.Tuples[i].ID)
			}
			for j := range want.Tuples[i].Values {
				if got.Tuples[i].Values[j] != want.Tuples[i].Values[j] {
					t.Fatalf("trial %d tuple %d value %d differs", trial, i, j)
				}
			}
		}
	}
	if reused < 50 {
		t.Fatalf("only %d containment reuses exercised; property too weak", reused)
	}
}

// TestContainmentDisabled: the config switch turns the path off.
func TestContainmentDisabled(t *testing.T) {
	db := testDB(t, 100, 40)
	c, err := New(db, Config{DisableContainment: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Search(ctx, pricePred(10, 40)); err != nil {
		t.Fatal(err)
	}
	before := db.QueryCount()
	if _, err := c.Search(ctx, pricePred(15, 25)); err != nil {
		t.Fatal(err)
	}
	if db.QueryCount() == before {
		t.Fatal("containment served although disabled")
	}
	if st := c.Stats(); st.ContainmentHits != 0 || st.CompleteEntries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestContainmentEvictionUnregisters: once the byte budget evicts a
// complete answer, narrower predicates must query again.
func TestContainmentEvictionUnregisters(t *testing.T) {
	db := testDB(t, 100, 40)
	// One shard, budget sized to hold roughly one answer.
	c, err := New(db, Config{Shards: 1, MaxBytes: 2500})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.Search(ctx, pricePred(10, 40)); err != nil {
		t.Fatal(err)
	}
	if c.Stats().CompleteEntries == 0 {
		t.Fatal("complete answer not registered")
	}
	// Fill with other complete answers until the first is evicted.
	for i := 0; i < 20 && c.Stats().Evictions == 0; i++ {
		lo := 50 + float64(i)
		if _, err := c.Search(ctx, pricePred(lo, lo+20)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Evictions == 0 {
		t.Skip("budget did not force an eviction; sizes changed")
	}
	if got, entries := c.Stats().CompleteEntries, c.Stats().Entries; got > entries {
		t.Fatalf("containment directory (%d) larger than resident set (%d)", got, entries)
	}
}
