package qcache

import (
	"encoding/binary"
	"math"

	"repro/internal/relation"
)

// Canonical predicate keying. Two predicates that accept exactly the same
// tuples for structural reasons — same conditions arriving in a different
// construction order, redundant full-interval constraints, duplicate or
// unsorted category lists — must map to the same cache key, so that
// semantically identical filters submitted by different users share one
// entry. relation.Predicate already keeps conditions sorted by attribute
// and category sets sorted and deduplicated; the key serialisation adds
// the remaining normalisations (dropping non-constraining full intervals,
// collapsing -0 onto +0) and a fixed binary layout.

// KeyOf returns the canonical cache key for a predicate.
func KeyOf(p relation.Predicate) string { return string(AppendKey(nil, p)) }

// AppendKey appends the canonical key bytes of p to buf and returns the
// extended slice.
func AppendKey(buf []byte, p relation.Predicate) []byte {
	for _, c := range p.Conditions() {
		if c.Cats != nil {
			buf = append(buf, 'c')
			buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Attr))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Cats)))
			for _, ci := range c.Cats {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(ci))
			}
			continue
		}
		if isFull(c.Iv) {
			// [-inf, +inf] constrains nothing; a predicate with and
			// without it accepts the same tuples.
			continue
		}
		buf = append(buf, 'n')
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Attr))
		buf = binary.LittleEndian.AppendUint64(buf, canonBits(c.Iv.Lo))
		buf = binary.LittleEndian.AppendUint64(buf, canonBits(c.Iv.Hi))
		var flags byte
		if c.Iv.LoOpen {
			flags |= 1
		}
		if c.Iv.HiOpen {
			flags |= 2
		}
		buf = append(buf, flags)
	}
	return buf
}

func isFull(iv relation.Interval) bool {
	return math.IsInf(iv.Lo, -1) && math.IsInf(iv.Hi, 1) && !iv.LoOpen && !iv.HiOpen
}

// canonBits returns the bit pattern of v with negative zero collapsed onto
// positive zero, so [0, x] and [-0, x] key identically.
func canonBits(v float64) uint64 {
	if v == 0 {
		v = 0
	}
	return math.Float64bits(v)
}
