// Package qcache is a shared, concurrency-safe answer cache for hidden
// web databases.
//
// QR2 is a third-party service: its entire operating cost is the number of
// top-k queries it issues to the web databases it rides on, and it serves
// many users at once. Concurrent sessions exploring overlapping regions of
// the same source repeatedly pay for identical searches. Cache wraps any
// hidden.DB as a decorator and memoizes Search results keyed by a
// canonical serialisation of the filter predicate, so semantically
// identical filters from different users resolve to one entry.
//
// The cache is sharded for high-QPS multi-user traffic: each shard owns an
// LRU list under its own mutex, with a configurable total byte budget and
// an optional TTL. Identical searches that are in flight at the same time
// are coalesced singleflight-style — N concurrent users asking the same
// question cost exactly one web-database query, which is the cheapest
// query of all.
//
// Beyond exact matches, the cache performs overflow-aware reuse: an answer
// whose Overflow flag is false is the complete match set of its predicate,
// so any strictly narrower predicate is answered by filtering it
// client-side — byte-identical to what the database would return,
// including the negative (empty) result — via a containment directory over
// complete answers (see contain.go).
//
// Entries can optionally be persisted through a kvstore.Store so a warm
// cache survives restarts; the store is fingerprinted against the source
// (name, system-k, schema) and wiped when the source changes, mirroring
// the boot-time cache verification of the dense-region index.
package qcache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hidden"
	"repro/internal/kvstore"
	"repro/internal/relation"
)

// DefaultMaxBytes is the byte budget used when Config.MaxBytes is zero.
const DefaultMaxBytes = 64 << 20

// defaultShards is the shard count used when Config.Shards is zero.
const defaultShards = 16

// Config sizes a Cache.
type Config struct {
	// MaxBytes is the total in-memory budget across all shards
	// (default DefaultMaxBytes). Negative admits no entries, leaving
	// only in-flight coalescing active.
	MaxBytes int64
	// TTL expires entries this long after they were filled. Zero means
	// entries never expire. A snapshot database never changes, but a
	// live web database does; the TTL bounds staleness.
	TTL time.Duration
	// Shards is the number of independent LRU shards (default 16,
	// rounded up to a power of two).
	Shards int
	// Store persists entries so a warm cache survives restarts. Nil
	// keeps the cache memory-only. The store is wiped when its recorded
	// source fingerprint no longer matches the database.
	Store kvstore.Store
	// DisableContainment turns off overflow-aware reuse: by default a
	// resident answer with Overflow=false (the complete match set of its
	// predicate) also serves every strictly narrower predicate by
	// client-side filtering, without touching the inner database.
	DisableContainment bool
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	// Hits counts searches answered from a resident entry with the exact
	// same canonical predicate.
	Hits int64 `json:"hits"`
	// ContainmentHits counts searches answered by filtering a resident
	// complete (non-overflowing) answer for a broader predicate —
	// overflow-aware reuse. Disjoint from Hits.
	ContainmentHits int64 `json:"containment_hits"`
	// Misses counts searches that had to query the inner database.
	Misses int64 `json:"misses"`
	// Coalesced counts searches that joined an identical in-flight
	// search instead of issuing their own.
	Coalesced int64 `json:"coalesced"`
	// Evictions counts entries dropped to respect the byte budget.
	Evictions int64 `json:"evictions"`
	// Expired counts entries dropped because their TTL ran out.
	Expired int64 `json:"expired"`
	// Entries and Bytes describe current residency.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// CompleteEntries counts resident answers available for containment
	// reuse (complete match sets).
	CompleteEntries int `json:"complete_entries"`
	// Warmed counts entries loaded from the persistent store at boot.
	Warmed int `json:"warmed"`
}

// HitRate returns the share of searches answered without the inner
// database: (hits + containment hits) / all searches. Zero before any
// lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.ContainmentHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.ContainmentHits) / float64(total)
}

// entry is one cached search result.
type entry struct {
	key      string
	res      hidden.Result
	size     int64
	storedAt time.Time
}

// flight is one in-progress inner search that identical concurrent
// searches wait on.
type flight struct {
	done chan struct{}
	res  hidden.Result
	err  error
}

// shard is one independently locked slice of the key space.
type shard struct {
	mu       sync.Mutex
	elems    map[string]*list.Element // key -> *entry element
	lru      *list.List               // front = most recently used
	bytes    int64
	maxBytes int64
	flights  map[string]*flight
}

// Cache decorates a hidden.DB with a shared answer cache. It implements
// hidden.DB and is safe for concurrent use by any number of sessions.
type Cache struct {
	inner     hidden.DB
	ttl       time.Duration
	shards    []*shard
	mask      uint64
	store     kvstore.Store
	now       func() time.Time
	complete  *completeDir // nil when containment reuse is disabled
	hits      atomic.Int64
	contained atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
	expired   atomic.Int64
	warmed    int
}

// New builds a cache over inner. When cfg.Store is non-nil the store is
// verified against the source fingerprint (wiping stale contents) and any
// surviving entries are loaded, newest first, up to the byte budget.
func New(inner hidden.DB, cfg Config) (*Cache, error) {
	if inner == nil {
		return nil, fmt.Errorf("qcache: nil inner database")
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.TTL < 0 {
		return nil, fmt.Errorf("qcache: negative TTL %v", cfg.TTL)
	}
	n := cfg.Shards
	if n <= 0 {
		n = defaultShards
	}
	for n&(n-1) != 0 {
		n++
	}
	c := &Cache{
		inner:  inner,
		ttl:    cfg.TTL,
		shards: make([]*shard, n),
		mask:   uint64(n - 1),
		store:  cfg.Store,
		now:    time.Now,
	}
	if !cfg.DisableContainment {
		c.complete = newCompleteDir()
	}
	per := cfg.MaxBytes / int64(n)
	for i := range c.shards {
		c.shards[i] = &shard{
			elems:    make(map[string]*list.Element),
			lru:      list.New(),
			maxBytes: per,
			flights:  make(map[string]*flight),
		}
	}
	if c.store != nil {
		if err := c.openStore(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// setClock overrides time for TTL tests.
func (c *Cache) setClock(now func() time.Time) { c.now = now }

// Name implements hidden.DB.
func (c *Cache) Name() string { return c.inner.Name() }

// Schema implements hidden.DB.
func (c *Cache) Schema() *relation.Schema { return c.inner.Schema() }

// SystemK implements hidden.DB.
func (c *Cache) SystemK() int { return c.inner.SystemK() }

// shardFor picks the shard by an FNV-1a hash of the key.
func (c *Cache) shardFor(key string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return c.shards[h&c.mask]
}

// Search implements hidden.DB. A resident entry answers immediately; a
// resident complete answer for a broader predicate answers by client-side
// filtering (overflow-aware reuse); an identical in-flight search is
// joined; otherwise the caller becomes the leader, queries the inner
// database once and publishes the result.
func (c *Cache) Search(ctx context.Context, p relation.Predicate) (hidden.Result, error) {
	key := KeyOf(p)
	sh := c.shardFor(key)
	// The containment scan must not run under the shard mutex — it would
	// serialize every other lookup on the shard behind a directory walk.
	// It is attempted once, lock-free, after the first exact miss; the
	// loop then re-checks the shard, which may have gained the entry or an
	// in-flight leader in the meantime.
	triedContainment := c.complete == nil
	for {
		sh.mu.Lock()
		if res, ok := c.lookupLocked(sh, key); ok {
			sh.mu.Unlock()
			c.hits.Add(1)
			return res, nil
		}
		if !triedContainment {
			sh.mu.Unlock()
			triedContainment = true
			if res, ok := c.complete.lookup(p, c.ttl, c.now()); ok {
				c.contained.Add(1)
				return res, nil
			}
			continue
		}
		if fl, ok := sh.flights[key]; ok {
			sh.mu.Unlock()
			c.coalesced.Add(1)
			select {
			case <-fl.done:
			case <-ctx.Done():
				return hidden.Result{}, ctx.Err()
			}
			if fl.err == nil {
				return copyResult(fl.res), nil
			}
			// The leader failed. When it died with its own context
			// while ours is still live, retry as a fresh leader
			// rather than surfacing someone else's cancellation.
			if isContextErr(fl.err) && ctx.Err() == nil {
				continue
			}
			return hidden.Result{}, fl.err
		}
		fl := &flight{done: make(chan struct{})}
		sh.flights[key] = fl
		sh.mu.Unlock()
		c.misses.Add(1)

		res, err := c.inner.Search(ctx, p)
		fl.res, fl.err = res, err

		var (
			admitted bool
			victims  []string
		)
		sh.mu.Lock()
		delete(sh.flights, key)
		if err == nil {
			admitted, victims = c.insertLocked(sh, key, res, c.now())
		}
		sh.mu.Unlock()
		close(fl.done)
		if err != nil {
			return hidden.Result{}, err
		}
		if c.store != nil {
			// Store I/O happens outside the shard lock; only admitted
			// entries are written, so the store never outgrows the
			// budget's reach.
			for _, v := range victims {
				_ = c.store.Delete(storeKey(v))
			}
			if admitted {
				c.persist(key, res)
			}
		}
		return copyResult(res), nil
	}
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// lookupLocked returns the resident result for key, refreshing its LRU
// position. Expired entries are dropped and reported as absent; the
// caller's refill overwrites any stale persisted record for the same key,
// and boot-time loading drops expired records, so no store I/O is needed
// under the lock.
func (c *Cache) lookupLocked(sh *shard, key string) (hidden.Result, bool) {
	el, ok := sh.elems[key]
	if !ok {
		return hidden.Result{}, false
	}
	e := el.Value.(*entry)
	if c.ttl > 0 && c.now().Sub(e.storedAt) > c.ttl {
		c.removeLocked(sh, el)
		c.expired.Add(1)
		return hidden.Result{}, false
	}
	sh.lru.MoveToFront(el)
	return copyResult(e.res), true
}

// insertLocked adds (or replaces) an entry and evicts from the cold end
// until the shard respects its byte budget. An entry larger than the whole
// shard budget is not admitted. It reports whether the entry was admitted
// and which keys were evicted, so the caller can mirror both onto the
// persistent store outside the lock.
func (c *Cache) insertLocked(sh *shard, key string, res hidden.Result, at time.Time) (admitted bool, victims []string) {
	if el, ok := sh.elems[key]; ok {
		c.removeLocked(sh, el)
	}
	e := &entry{key: key, res: res, size: entrySize(key, res), storedAt: at}
	if e.size > sh.maxBytes {
		return false, nil
	}
	sh.elems[key] = sh.lru.PushFront(e)
	sh.bytes += e.size
	if c.complete != nil {
		c.complete.register(key, res, at)
	}
	for sh.bytes > sh.maxBytes {
		cold := sh.lru.Back()
		if cold == nil {
			break
		}
		victims = append(victims, cold.Value.(*entry).key)
		c.removeLocked(sh, cold)
		c.evictions.Add(1)
	}
	return true, victims
}

func (c *Cache) removeLocked(sh *shard, el *list.Element) {
	e := el.Value.(*entry)
	sh.lru.Remove(el)
	delete(sh.elems, e.key)
	sh.bytes -= e.size
	if c.complete != nil {
		c.complete.unregister(e.key)
	}
}

// entrySize estimates the resident footprint of one entry: the key, the
// tuple payload and a fixed per-entry overhead for the map and list cells.
func entrySize(key string, res hidden.Result) int64 {
	const overhead = 96
	size := int64(len(key)) + overhead
	for _, t := range res.Tuples {
		size += 16 + 8*int64(len(t.Values))
	}
	return size
}

// copyResult returns a result whose tuple slice the caller may append to
// or reorder without corrupting the cached copy. Tuples themselves are
// shared, matching the immutability convention of hidden.Local.
func copyResult(res hidden.Result) hidden.Result {
	return hidden.Result{
		Tuples:   append([]relation.Tuple(nil), res.Tuples...),
		Overflow: res.Overflow,
	}
}

// Stats returns a snapshot of the cache counters and residency.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:            c.hits.Load(),
		ContainmentHits: c.contained.Load(),
		Misses:          c.misses.Load(),
		Coalesced:       c.coalesced.Load(),
		Evictions:       c.evictions.Load(),
		Expired:         c.expired.Load(),
		Warmed:          c.warmed,
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		st.Entries += len(sh.elems)
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	if c.complete != nil {
		st.CompleteEntries = c.complete.len()
	}
	return st
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.elems)
		sh.mu.Unlock()
	}
	return n
}

// Purge drops every resident entry (and, when persistent, every stored
// one). Counters are preserved.
func (c *Cache) Purge() error {
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.elems = make(map[string]*list.Element)
		sh.lru = list.New()
		sh.bytes = 0
		sh.mu.Unlock()
	}
	if c.complete != nil {
		c.complete.purge()
	}
	if c.store == nil {
		return nil
	}
	return c.wipeStore()
}

var _ hidden.DB = (*Cache)(nil)
