// Package qcache is a shared, concurrency-safe answer cache for hidden
// web databases.
//
// QR2 is a third-party service: its entire operating cost is the number of
// top-k queries it issues to the web databases it rides on, and it serves
// many users at once. Concurrent sessions exploring overlapping regions of
// the same source repeatedly pay for identical searches. Cache wraps any
// hidden.DB as a decorator and memoizes Search results keyed by a
// canonical serialisation of the filter predicate, so semantically
// identical filters from different users resolve to one entry.
//
// Caches are views onto a Pool: one process-wide set of LRU shards under a
// single global byte budget. A stand-alone Cache (New) owns a private
// pool; a service hosting many sources registers each as a Pool namespace
// instead, so a hot source borrows cache capacity an idle source is not
// using, bounded by small per-namespace floors (see Pool). The budget
// itself can be a fixed byte count or a governed memgov.Account shared
// with the dense index's tuple residency.
//
// Identical searches that are in flight at the same time are coalesced
// singleflight-style — N concurrent users asking the same question cost
// exactly one web-database query, which is the cheapest query of all.
//
// Beyond exact matches, the cache performs overflow-aware reuse: an answer
// whose Overflow flag is false is the complete match set of its predicate,
// so any strictly narrower predicate is answered by filtering it
// client-side — byte-identical to what the database would return,
// including the negative (empty) result — via a containment directory over
// complete answers (see contain.go). The crawl layer feeds the same
// directory: a completed region crawl admits the region's full match set
// (AdmitCrawl), so predicates inside a crawled region are served with zero
// web-database queries even though no single query ever returned them.
//
// Entries can optionally be persisted through a kvstore.Store so a warm
// cache survives restarts; the store carries the source's epoch record —
// the boot fingerprint (name, system-k, schema) plus the live epoch
// sequence number — and is wiped when either half no longer matches,
// mirroring the boot-time cache verification of the dense-region index.
//
// Beyond boot, the cache participates in the live epoch lifecycle
// (internal/epoch): with Config.Epochs set, the namespace registers its
// source epoch in the registry and every bump — a change-detection
// prober's digest mismatch, or a higher epoch adopted from a cluster
// peer — wipes the namespace while it keeps serving. A full bump drops
// everything: resident entries, the containment directory, the
// crawl-admitted region sets and the persisted records. A region-scoped
// bump (Epoch.Scope) wipes selectively: only state whose predicate
// intersects the bumped rect goes, and the rest stays warm. Both are
// atomic with respect to concurrent lookups and in-flight leaders —
// admissions are fenced on the epoch sequence they were issued under,
// with an older answer admitted only when every bump since is provably
// disjoint from its predicate.
package qcache

import (
	"context"
	"errors"
	"sort"
	"time"

	"repro/internal/epoch"
	"repro/internal/hidden"
	"repro/internal/kvstore"
	"repro/internal/relation"
)

// DefaultMaxBytes is the byte budget used when Config.MaxBytes is zero.
const DefaultMaxBytes = 64 << 20

// defaultShards is the shard count used when Config.Shards is zero.
const defaultShards = 16

// Config sizes a Cache.
type Config struct {
	// MaxBytes is the total in-memory budget across all shards
	// (default DefaultMaxBytes). Negative admits no entries, leaving
	// only in-flight coalescing active. Ignored by Pool.Namespace, where
	// the pool's global budget applies instead.
	MaxBytes int64
	// TTL expires entries this long after they were filled. Zero means
	// entries never expire. A snapshot database never changes, but a
	// live web database does; the TTL bounds staleness.
	TTL time.Duration
	// Shards is the number of independent LRU shards (default 16,
	// rounded up to a power of two). Ignored by Pool.Namespace.
	Shards int
	// Store persists entries so a warm cache survives restarts. Nil
	// keeps the cache memory-only. The store is wiped when its recorded
	// source fingerprint no longer matches the database.
	Store kvstore.Store
	// DisableContainment turns off overflow-aware reuse: by default a
	// resident answer with Overflow=false (the complete match set of its
	// predicate) also serves every strictly narrower predicate by
	// client-side filtering, without touching the inner database.
	DisableContainment bool
	// Epochs joins the cache to a live source-epoch registry
	// (internal/epoch): the namespace registers its boot epoch under the
	// source name and wipes itself on every bump — a local change
	// detection or a higher epoch adopted from a cluster peer. Nil keeps
	// the boot-time fingerprint as the only invalidation signal.
	Epochs *epoch.Registry
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	// Hits counts searches answered from a resident entry with the exact
	// same canonical predicate.
	Hits int64 `json:"hits"`
	// ContainmentHits counts searches answered by filtering a resident
	// complete (non-overflowing) answer for a broader predicate —
	// overflow-aware reuse. Disjoint from Hits.
	ContainmentHits int64 `json:"containment_hits"`
	// CrawlHits counts searches answered from a crawl-admitted region
	// match set (AdmitCrawl). Disjoint from Hits and ContainmentHits.
	CrawlHits int64 `json:"crawl_hits"`
	// Misses counts searches that had to query the inner database.
	Misses int64 `json:"misses"`
	// Coalesced counts searches that joined an identical in-flight
	// search instead of issuing their own.
	Coalesced int64 `json:"coalesced"`
	// Evictions counts entries dropped to respect the byte budget.
	Evictions int64 `json:"evictions"`
	// Expired counts entries dropped because their TTL ran out.
	Expired int64 `json:"expired"`
	// Entries and Bytes describe current residency.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// CompleteEntries counts resident answers available for containment
	// reuse (complete match sets returned by single queries).
	CompleteEntries int `json:"complete_entries"`
	// CrawlEntries counts resident region match sets admitted by the
	// crawl refill.
	CrawlEntries int `json:"crawl_entries"`
	// Warmed counts entries loaded from the persistent store at boot.
	Warmed int `json:"warmed"`
	// EpochSeq is the source epoch the namespace currently serves under;
	// EpochWipes counts runtime epoch bumps adopted as full namespace
	// wipes.
	EpochSeq   uint64 `json:"epoch_seq"`
	EpochWipes int64  `json:"epoch_wipes"`
	// PartialWipes counts region-scoped bumps adopted as selective wipes;
	// WipeDropped and WipeRetained count the entries those wipes dropped
	// (predicate intersecting the bumped region) and kept.
	PartialWipes int64 `json:"partial_wipes"`
	WipeDropped  int64 `json:"wipe_dropped_entries"`
	WipeRetained int64 `json:"wipe_retained_entries"`
}

// HitRate returns the share of searches answered without the inner
// database: (hits + containment hits + crawl hits) / all searches. Zero
// before any lookup.
func (s Stats) HitRate() float64 {
	served := s.Hits + s.ContainmentHits + s.CrawlHits
	total := served + s.Misses
	if total == 0 {
		return 0
	}
	return float64(served) / float64(total)
}

// Cache decorates a hidden.DB with a shared answer cache. It implements
// hidden.DB and is safe for concurrent use by any number of sessions.
// A Cache is a view onto one Pool namespace: New builds a private
// single-namespace pool, Pool.Namespace joins an existing one.
type Cache struct {
	ns *namespace
}

// New builds a stand-alone cache over inner, backed by a private pool
// sized from cfg. When cfg.Store is non-nil the store is verified against
// the source fingerprint (wiping stale contents) and any surviving
// entries are loaded, newest first, up to the byte budget.
func New(inner hidden.DB, cfg Config) (*Cache, error) {
	if inner == nil {
		return nil, errors.New("qcache: nil inner database")
	}
	pool := NewPool(PoolConfig{MaxBytes: cfg.MaxBytes, Shards: cfg.Shards})
	return pool.Namespace(inner.Name(), inner, cfg)
}

// setClock overrides time for TTL tests.
func (c *Cache) setClock(now func() time.Time) { c.ns.pool.setClock(now) }

// Name implements hidden.DB.
func (c *Cache) Name() string { return c.ns.inner.Name() }

// Schema implements hidden.DB.
func (c *Cache) Schema() *relation.Schema { return c.ns.inner.Schema() }

// SystemK implements hidden.DB.
func (c *Cache) SystemK() int { return c.ns.inner.SystemK() }

// Search implements hidden.DB. A resident entry answers immediately; a
// resident complete answer for a broader predicate answers by client-side
// filtering (overflow-aware reuse); an identical in-flight search is
// joined; otherwise the caller becomes the leader, queries the inner
// database once and publishes the result.
func (c *Cache) Search(ctx context.Context, p relation.Predicate) (hidden.Result, error) {
	return c.ns.search(ctx, p)
}

// Peek answers p from local residency only — an exact resident entry, a
// covering complete answer, or a crawl-admitted region set — and reports
// found=false otherwise. It never queries the inner database and never
// joins or starts an in-flight search. The cluster layer serves peer
// lookups (/cluster/get) and pre-forward local checks with it. Served
// traffic counts toward the ordinary hit counters; a peek miss is not a
// cache miss, because no inner query follows here.
func (c *Cache) Peek(p relation.Predicate) (hidden.Result, bool) {
	return c.ns.peek(p)
}

// PeekShared is Peek without the defensive tuple-slice copy: the
// returned slice is owned by the cache and must not be mutated or
// retained past the call's immediate use. It exists for the peer serve
// paths, which only serialize the result onto the wire — at wire speed
// the copy Peek makes per forwarded lookup is measurable.
func (c *Cache) PeekShared(p relation.Predicate) (hidden.Result, bool) {
	return c.ns.peekShared(p)
}

// Admit publishes an externally produced answer for p as if the inner
// database had just returned it: the entry is admitted against the
// budget, registered for containment reuse when complete, and persisted
// when a store is configured. The cluster layer uses it to install
// answers pushed by peer replicas (/cluster/put). The result is copied;
// the caller keeps ownership of its slice.
func (c *Cache) Admit(p relation.Predicate, res hidden.Result) {
	c.ns.admitAt(p, res, c.ns.epochSeq.Load())
}

// AdmitAt is Admit fenced on the source epoch the answer was produced
// under: the admission is checked against epochSeq under the shard lock,
// so an answer from an older epoch is dropped even when the bump lands
// between the caller's own staleness check and the insert. The cluster
// put handler uses it with the epoch seq carried on the wire.
func (c *Cache) AdmitAt(p relation.Predicate, res hidden.Result, epochSeq uint64) {
	c.ns.admitAt(p, res, epochSeq)
}

// AdmitCrawl publishes the complete match set of pred, assembled by a
// region crawl rather than returned by any single query, for
// containment-style reuse. A later predicate inside the region whose
// match set fits under system-k is answered client-side with the exact
// set and overflow flag the database would produce; tuples arrive in
// tuple-ID order rather than system-rank order, because no sequence of
// top-k queries can observe the global rank order of an overflowing
// region (the containment directory documents the cap). Narrower
// predicates matching more than system-k tuples are never served this
// way — emulating the database's truncation would require the unknowable
// rank order — and fall through to a real query. No-op when containment
// reuse is disabled. The crawl layer (internal/crawl.All) calls this for
// every complete crawl whose executor fronts a Cache.
//
// AdmitCrawl takes ownership of tuples: the slice is sorted in place and
// retained; the caller must not modify it afterwards.
func (c *Cache) AdmitCrawl(pred relation.Predicate, tuples []relation.Tuple) {
	c.ns.admitCrawl(pred, tuples, c.ns.epochSeq.Load())
}

// AdmitCrawlAt is AdmitCrawl fenced on the source epoch the crawl began
// under (crawl.EpochAdmitter): the admission is re-checked under the
// shard lock, so a crawl that straddled an epoch bump whose region
// touches the crawled predicate — its set may mix pre- and post-change
// answers — is dropped even when the bump lands between the crawl's last
// query and the admission. A crawl that straddled only region-scoped
// bumps disjoint from its predicate keeps its set: the change cannot
// have altered any tuple the crawl collected.
func (c *Cache) AdmitCrawlAt(pred relation.Predicate, tuples []relation.Tuple, epochSeq uint64) {
	c.ns.admitCrawl(pred, tuples, epochSeq)
}

// EpochSeq returns the source epoch the cache currently serves under.
// Every resident answer was produced at this epoch; the crawl layer
// captures it before a crawl and skips admission when it moved, and the
// cluster layer tags peer admissions with it so owners can reject stale
// pushes.
func (c *Cache) EpochSeq() uint64 { return c.ns.epochSeq.Load() }

// Discard drops the exact resident entry for p (and its persisted
// record), leaving every other entry alone. The cluster layer releases a
// re-homed fallback copy with it once the recovered owner holds the
// answer.
func (c *Cache) Discard(p relation.Predicate) { c.ns.discard(KeyOf(p)) }

// Stats returns a snapshot of the cache counters and residency.
func (c *Cache) Stats() Stats { return c.ns.stats() }

// HotPredicates returns up to max of the cache's most-served resident
// predicates, hottest first. The change prober samples it to derive
// sentinel placement from live traffic (epoch.ProberConfig.Hot), so
// probing concentrates where reuse — and therefore staleness risk —
// actually is.
func (c *Cache) HotPredicates(max int) []relation.Predicate { return c.ns.hotPredicates(max) }

// Len returns the number of resident entries.
func (c *Cache) Len() int { return int(c.ns.entries.Load()) }

// Purge drops every resident entry of this cache's namespace (and, when
// persistent, every stored one). Counters are preserved.
func (c *Cache) Purge() error {
	c.ns.purgeResident()
	if c.ns.store == nil {
		return nil
	}
	return c.ns.wipeStore()
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// entrySize estimates the resident footprint of one entry: the key, the
// tuple payload and a fixed per-entry overhead for the map and list cells.
func entrySize(key string, res hidden.Result) int64 {
	const overhead = 96
	size := int64(len(key)) + overhead
	for _, t := range res.Tuples {
		size += 16 + 8*int64(len(t.Values))
	}
	return size
}

// copyResult returns a result whose tuple slice the caller may append to
// or reorder without corrupting the cached copy. Tuples themselves are
// shared, matching the immutability convention of hidden.Local.
func copyResult(res hidden.Result) hidden.Result {
	return hidden.Result{
		Tuples:   append([]relation.Tuple(nil), res.Tuples...),
		Overflow: res.Overflow,
		Degraded: res.Degraded,
	}
}

// sortTuplesByID orders a tuple slice by ID ascending — the documented
// order of crawl-admitted region sets.
func sortTuplesByID(ts []relation.Tuple) {
	sort.Slice(ts, func(a, b int) bool { return ts[a].ID < ts[b].ID })
}

var _ hidden.DB = (*Cache)(nil)
