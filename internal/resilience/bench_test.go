package resilience

import (
	"context"
	"testing"

	"repro/internal/hidden"
	"repro/internal/relation"
)

// BenchmarkSearchHappyPath measures the per-call overhead the policy
// wrapper adds when the source is healthy — breaker admission, attempt
// bookkeeping and the per-attempt deadline context. CI gates this under
// 1 µs (BENCH_resilience.json records the measured number).
func BenchmarkSearchHappyPath(b *testing.B) {
	db := &fakeDB{name: "src", fn: func(n int) (hidden.Result, error) {
		return hidden.Result{}, nil
	}}
	src := NewSource(Policy{})
	wrapped := src.Wrap(db)
	ctx := context.Background()
	p := relation.Predicate{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wrapped.Search(ctx, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchShortCircuit measures the open-breaker fast path: the
// cost of rejecting (and degrading) a call without touching the source.
func BenchmarkSearchShortCircuit(b *testing.B) {
	db := &fakeDB{name: "src", fn: func(n int) (hidden.Result, error) {
		return hidden.Result{}, nil
	}}
	src := NewSource(Policy{DegradedServe: true})
	wrapped := src.Wrap(db)
	for i := 0; i < src.pol.BreakerThreshold; i++ {
		src.br.failure()
	}
	if src.State() != Open {
		b.Fatal("breaker did not open")
	}
	ctx := context.Background()
	p := relation.Predicate{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := wrapped.Search(ctx, p)
		if err != nil || !res.Degraded {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}
