package resilience

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/hidden"
	"repro/internal/relation"
)

// fakeDB scripts one answer per call by 1-based call number.
type fakeDB struct {
	name  string
	fn    func(n int) (hidden.Result, error)
	calls atomic.Int64
}

func (f *fakeDB) Name() string             { return f.name }
func (f *fakeDB) Schema() *relation.Schema { return nil }
func (f *fakeDB) SystemK() int             { return 5 }
func (f *fakeDB) QueryCount() int64        { return f.calls.Load() }
func (f *fakeDB) ResetQueryCount()         { f.calls.Store(0) }
func (f *fakeDB) Search(ctx context.Context, p relation.Predicate) (hidden.Result, error) {
	if err := ctx.Err(); err != nil {
		return hidden.Result{}, err
	}
	return f.fn(int(f.calls.Add(1)))
}

var transportErr = &net.OpError{Op: "read", Net: "tcp", Err: errors.New("connection reset by test")}

// statusErr mimics wdbhttp.StatusError without importing it.
type statusErr struct{ code int }

func (e *statusErr) Error() string   { return fmt.Sprintf("status %d", e.code) }
func (e *statusErr) HTTPStatus() int { return e.code }

// fastPolicy keeps test retries/backoff in the microsecond range.
func fastPolicy() Policy {
	return Policy{
		AttemptTimeout:   time.Second,
		MaxAttempts:      3,
		BackoffBase:      time.Microsecond,
		BackoffCap:       10 * time.Microsecond,
		BreakerThreshold: 3,
		BreakerOpenFor:   50 * time.Millisecond,
	}
}

func TestRetryRecoversFromTransportErrors(t *testing.T) {
	db := &fakeDB{name: "src", fn: func(n int) (hidden.Result, error) {
		if n <= 2 {
			return hidden.Result{}, transportErr
		}
		return hidden.Result{Overflow: true}, nil
	}}
	src := NewSource(fastPolicy())
	res, err := src.Wrap(db).Search(context.Background(), relation.Predicate{})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if !res.Overflow || res.Degraded {
		t.Fatalf("unexpected result %+v", res)
	}
	st := src.Stats()
	if st.Retries != 2 || st.Failures != 2 || st.Attempts != 3 {
		t.Fatalf("stats %+v, want 2 retries / 2 failures / 3 attempts", st)
	}
	if src.State() != Closed {
		t.Fatalf("breaker %v after recovery, want closed", src.State())
	}
}

func TestApplicationErrorsNeitherRetryNorIndict(t *testing.T) {
	appErr := errors.New("hidden: injected failure")
	db := &fakeDB{name: "src", fn: func(n int) (hidden.Result, error) {
		return hidden.Result{}, appErr
	}}
	src := NewSource(fastPolicy())
	wrapped := src.Wrap(db)
	for i := 0; i < 10; i++ {
		if _, err := wrapped.Search(context.Background(), relation.Predicate{}); !errors.Is(err, appErr) {
			t.Fatalf("Search err = %v, want %v unchanged", err, appErr)
		}
	}
	if got := db.calls.Load(); got != 10 {
		t.Fatalf("inner calls = %d, want 10 (no retries on app errors)", got)
	}
	if src.State() != Closed || src.Stats().Opens != 0 {
		t.Fatalf("app errors tripped the breaker: %+v", src.Stats())
	}
}

func TestFourXXDoesNotRetryButFiveXXDoes(t *testing.T) {
	for _, tc := range []struct {
		code      int
		wantCalls int64
	}{{404, 1}, {503, 3}, {429, 3}} {
		db := &fakeDB{name: "src", fn: func(n int) (hidden.Result, error) {
			return hidden.Result{}, &statusErr{tc.code}
		}}
		src := NewSource(fastPolicy())
		if _, err := src.Wrap(db).Search(context.Background(), relation.Predicate{}); err == nil {
			t.Fatalf("code %d: want error", tc.code)
		}
		if got := db.calls.Load(); got != tc.wantCalls {
			t.Errorf("code %d: inner calls = %d, want %d", tc.code, got, tc.wantCalls)
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	healthy := atomic.Bool{}
	db := &fakeDB{name: "src", fn: func(n int) (hidden.Result, error) {
		if healthy.Load() {
			return hidden.Result{Overflow: true}, nil
		}
		return hidden.Result{}, transportErr
	}}
	pol := fastPolicy()
	pol.MaxAttempts = 1 // one indictment per call, for precise counting
	src := NewSource(pol)
	wrapped := src.Wrap(db)
	now := time.Now()
	src.br.now = func() time.Time { return now }

	ctx := context.Background()
	for i := 0; i < pol.BreakerThreshold; i++ {
		if _, err := wrapped.Search(ctx, relation.Predicate{}); err == nil {
			t.Fatal("want transport error while unhealthy")
		}
	}
	if src.State() != Open {
		t.Fatalf("state %v after %d failures, want open", src.State(), pol.BreakerThreshold)
	}
	// Open: short-circuited without touching the source.
	before := db.calls.Load()
	if _, err := wrapped.Search(ctx, relation.Predicate{}); !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen", err)
	}
	if db.calls.Load() != before {
		t.Fatal("open breaker still reached the source")
	}
	if src.Stats().ShortCircuits != 1 {
		t.Fatalf("short circuits = %d, want 1", src.Stats().ShortCircuits)
	}
	// Window elapses; a failing probe re-opens.
	now = now.Add(pol.BreakerOpenFor + time.Millisecond)
	if _, err := wrapped.Search(ctx, relation.Predicate{}); err == nil {
		t.Fatal("want probe failure")
	}
	if src.State() != Open {
		t.Fatalf("state %v after failed probe, want open", src.State())
	}
	// Window elapses again; a healthy probe closes.
	healthy.Store(true)
	now = now.Add(pol.BreakerOpenFor + time.Millisecond)
	if _, err := wrapped.Search(ctx, relation.Predicate{}); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if src.State() != Closed {
		t.Fatalf("state %v after healthy probe, want closed", src.State())
	}
	st := src.Stats()
	if st.Opens != 2 || st.HalfOpens != 2 || st.Closes != 1 {
		t.Fatalf("transitions %+v, want 2 opens / 2 half-opens / 1 close", st)
	}
}

func TestHalfOpenAdmitsBoundedProbes(t *testing.T) {
	b := newBreaker(1, 50*time.Millisecond, 1)
	now := time.Now()
	b.now = func() time.Time { return now }
	b.failure()
	if s, _, _, _ := b.snapshot(); s != Open {
		t.Fatalf("state %v, want open", s)
	}
	now = now.Add(51 * time.Millisecond)
	if !b.allow() {
		t.Fatal("first probe should be admitted")
	}
	if b.allow() {
		t.Fatal("second concurrent probe should be rejected with probes=1")
	}
	b.release()
	if !b.allow() {
		t.Fatal("released probe slot should be reusable")
	}
	b.success()
	if s, _, _, _ := b.snapshot(); s != Closed {
		t.Fatalf("state %v after probe success, want closed", s)
	}
}

func TestDegradedServe(t *testing.T) {
	db := &fakeDB{name: "src", fn: func(n int) (hidden.Result, error) {
		return hidden.Result{}, transportErr
	}}
	pol := fastPolicy()
	pol.DegradedServe = true
	src := NewSource(pol)
	wrapped := src.Wrap(db)
	ctx := context.Background()
	res, err := wrapped.Search(ctx, relation.Predicate{})
	if err != nil {
		t.Fatalf("degraded serve should not error: %v", err)
	}
	if !res.Degraded || len(res.Tuples) != 0 || res.Overflow {
		t.Fatalf("want empty degraded result, got %+v", res)
	}
	// Trip the breaker; short circuits degrade too.
	for i := 0; i < 5; i++ {
		wrapped.Search(ctx, relation.Predicate{})
	}
	if src.State() != Open {
		t.Fatalf("state %v, want open", src.State())
	}
	before := db.calls.Load()
	res, err = wrapped.Search(ctx, relation.Predicate{})
	if err != nil || !res.Degraded {
		t.Fatalf("short-circuit degrade: res=%+v err=%v", res, err)
	}
	if db.calls.Load() != before {
		t.Fatal("open breaker reached the source")
	}
	if src.Stats().DegradedServes < 2 {
		t.Fatalf("degraded serves = %d, want >= 2", src.Stats().DegradedServes)
	}
}

func TestAttemptTimeoutClassifiedTemporary(t *testing.T) {
	db := &fakeDB{name: "src"}
	db.fn = func(n int) (hidden.Result, error) { panic("unused") }
	slow := slowDB{delay: time.Second, inner: db}
	pol := fastPolicy()
	pol.AttemptTimeout = 2 * time.Millisecond
	pol.MaxAttempts = 2
	src := NewSource(pol)
	_, err := src.Wrap(slow).Search(context.Background(), relation.Predicate{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped deadline exceeded", err)
	}
	if st := src.Stats(); st.Retries != 1 || st.Failures != 2 {
		t.Fatalf("stats %+v, want 1 retry / 2 failures", st)
	}
}

// slowDB sleeps before answering, honouring the context.
type slowDB struct {
	delay time.Duration
	inner hidden.DB
}

func (s slowDB) Name() string             { return s.inner.Name() }
func (s slowDB) Schema() *relation.Schema { return s.inner.Schema() }
func (s slowDB) SystemK() int             { return s.inner.SystemK() }
func (s slowDB) Search(ctx context.Context, p relation.Predicate) (hidden.Result, error) {
	select {
	case <-time.After(s.delay):
		return hidden.Result{Overflow: true}, nil
	case <-ctx.Done():
		return hidden.Result{}, ctx.Err()
	}
}

func TestHedgeWinsOnSlowFirstAttempt(t *testing.T) {
	var calls atomic.Int64
	hedgy := hedgeDB{calls: &calls}
	pol := fastPolicy()
	pol.HedgeAfter = 2 * time.Millisecond
	src := NewSource(pol)
	res, err := src.Wrap(hedgy).Search(context.Background(), relation.Predicate{})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if !res.Overflow {
		t.Fatalf("want the hedged (fast) answer, got %+v", res)
	}
	st := src.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats %+v, want 1 hedge / 1 hedge win", st)
	}
}

// hedgeDB stalls the first call long enough for the hedge to win.
type hedgeDB struct{ calls *atomic.Int64 }

func (h hedgeDB) Name() string             { return "hedgy" }
func (h hedgeDB) Schema() *relation.Schema { return nil }
func (h hedgeDB) SystemK() int             { return 5 }
func (h hedgeDB) Search(ctx context.Context, p relation.Predicate) (hidden.Result, error) {
	if h.calls.Add(1) == 1 {
		select {
		case <-time.After(500 * time.Millisecond):
			return hidden.Result{}, nil
		case <-ctx.Done():
			return hidden.Result{}, ctx.Err()
		}
	}
	return hidden.Result{Overflow: true}, nil
}

func TestRateLimiterWaits(t *testing.T) {
	db := &fakeDB{name: "src", fn: func(n int) (hidden.Result, error) {
		return hidden.Result{}, nil
	}}
	pol := fastPolicy()
	pol.RatePerSec = 200
	pol.Burst = 1
	src := NewSource(pol)
	wrapped := src.Wrap(db)
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 3; i++ {
		if _, err := wrapped.Search(ctx, relation.Predicate{}); err != nil {
			t.Fatalf("Search: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Fatalf("3 calls at 200/s with burst 1 took %v, want >= ~10ms", elapsed)
	}
	if src.Stats().RateWaits < 2 {
		t.Fatalf("rate waits = %d, want >= 2", src.Stats().RateWaits)
	}
}

func TestConcurrencyCapHonoursContext(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	db := &fakeDB{name: "src"}
	blocked := blockingDB{release: release, started: started, inner: db}
	pol := fastPolicy()
	pol.MaxConcurrent = 1
	src := NewSource(pol)
	wrapped := src.Wrap(blocked)
	go wrapped.Search(context.Background(), relation.Predicate{})
	<-started // the first call holds the only semaphore slot
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := wrapped.Search(ctx, relation.Predicate{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded while waiting on the semaphore", err)
	}
	close(release)
}

// blockingDB signals when a search starts and blocks until released.
type blockingDB struct {
	release chan struct{}
	started chan struct{}
	inner   hidden.DB
}

func (b blockingDB) Name() string             { return b.inner.Name() }
func (b blockingDB) Schema() *relation.Schema { return b.inner.Schema() }
func (b blockingDB) SystemK() int             { return b.inner.SystemK() }
func (b blockingDB) Search(ctx context.Context, p relation.Predicate) (hidden.Result, error) {
	select {
	case b.started <- struct{}{}:
	default:
	}
	select {
	case <-b.release:
		return hidden.Result{}, nil
	case <-ctx.Done():
		return hidden.Result{}, ctx.Err()
	}
}

func TestCounterPassthrough(t *testing.T) {
	db := &fakeDB{name: "src", fn: func(n int) (hidden.Result, error) {
		return hidden.Result{}, nil
	}}
	src := NewSource(fastPolicy())
	wrapped := src.Wrap(db)
	c, ok := wrapped.(hidden.Counter)
	if !ok {
		t.Fatal("wrapper dropped the hidden.Counter capability")
	}
	wrapped.Search(context.Background(), relation.Predicate{})
	if c.QueryCount() != 1 {
		t.Fatalf("QueryCount = %d, want 1", c.QueryCount())
	}
}

func TestTemporaryClassification(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"net.OpError", transportErr, true},
		{"wrapped ECONNRESET", fmt.Errorf("dial: %w", syscall.ECONNRESET), true},
		{"wrapped ECONNREFUSED", fmt.Errorf("dial: %w", syscall.ECONNREFUSED), true},
		{"status 503", &statusErr{503}, true},
		{"status 429", &statusErr{429}, true},
		{"status 404", &statusErr{404}, false},
		{"wrapped status 500", fmt.Errorf("search: %w", &statusErr{500}), true},
		{"deadline", context.DeadlineExceeded, true},
		{"cancel", context.Canceled, false},
		{"app error", errors.New("no such attribute"), false},
	} {
		if got := Temporary(tc.err); got != tc.want {
			t.Errorf("Temporary(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestDoRetriesTransportOnly(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Retry{MaxAttempts: 3, BackoffBase: time.Microsecond}, func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return transportErr
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil after 3 attempts", err, calls)
	}

	calls = 0
	appErr := errors.New("bad request")
	err = Do(context.Background(), Retry{MaxAttempts: 3, BackoffBase: time.Microsecond}, func(ctx context.Context) error {
		calls++
		return appErr
	})
	if !errors.Is(err, appErr) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want app error after 1 attempt", err, calls)
	}

	// Zero value: single attempt, behaviour unchanged.
	calls = 0
	Do(context.Background(), Retry{}, func(ctx context.Context) error {
		calls++
		return transportErr
	})
	if calls != 1 {
		t.Fatalf("zero-value Retry made %d attempts, want 1", calls)
	}

	// Custom RetryIf overrides classification.
	calls = 0
	Do(context.Background(), Retry{MaxAttempts: 2, BackoffBase: time.Microsecond,
		RetryIf: func(error) bool { return true }}, func(ctx context.Context) error {
		calls++
		return appErr
	})
	if calls != 2 {
		t.Fatalf("RetryIf=always made %d attempts, want 2", calls)
	}
}

func TestDoAttemptTimeout(t *testing.T) {
	var sawDeadline atomic.Bool
	err := Do(context.Background(), Retry{MaxAttempts: 2, AttemptTimeout: 2 * time.Millisecond,
		BackoffBase: time.Microsecond}, func(ctx context.Context) error {
		select {
		case <-time.After(time.Second):
			return nil
		case <-ctx.Done():
			sawDeadline.Store(true)
			return ctx.Err()
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) || !sawDeadline.Load() {
		t.Fatalf("err=%v, want per-attempt deadline to fire", err)
	}
}
