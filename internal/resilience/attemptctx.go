package resilience

import (
	"context"
	"sync"
	"time"
)

// attemptCtx enforces the per-attempt deadline without paying for a
// fresh context.WithTimeout per call (~850 ns and 4 allocations on the
// bench machine, which alone would blow the <1 µs happy-path budget).
//
// The trick is reuse: an attempt that finishes before its deadline
// never closes the done channel, so the whole object — channel and
// armed timer included — goes back to a pool. Only attempts that
// actually expire (or whose parent is cancelled mid-flight) burn the
// object. Healthy traffic therefore allocates nothing per call.
//
// Reuse has one hazard: callees may derive child contexts that outlive
// the attempt (net/http's transport keeps its per-request cancelCtx —
// parented on this context — registered until its read loop finishes),
// so a stale reference can call Value/Err/Deadline after the object
// was re-armed for the next attempt. parent and deadline are therefore
// only accessed under mu; a stale reader observes the next attempt's
// parent, which is harmless — the standard library guards its parent
// lookups by comparing done channels, and ours stays the same object.
type attemptCtx struct {
	timer *time.Timer
	stop  func() bool // detaches the parent-cancel watcher, nil if none

	mu       sync.Mutex
	parent   context.Context
	deadline time.Time
	done     chan struct{}
	fired    bool
	err      error
}

var attemptPool = sync.Pool{
	New: func() any {
		c := &attemptCtx{done: make(chan struct{}), parent: context.Background()}
		// Arm far in the future and stop immediately: the timer exists
		// so later acquisitions only Reset it.
		c.timer = time.AfterFunc(time.Hour, c.onTimeout)
		c.timer.Stop()
		return c
	},
}

// newAttemptCtx returns a context expiring after d (or at the parent's
// deadline, whichever is sooner) and a release function the caller must
// invoke when the attempt completes.
func newAttemptCtx(parent context.Context, d time.Duration) (context.Context, func()) {
	c := attemptPool.Get().(*attemptCtx)
	deadline := time.Now().Add(d)
	if pd, ok := parent.Deadline(); ok && pd.Before(deadline) {
		deadline = pd
	}
	c.mu.Lock()
	c.parent = parent
	c.deadline = deadline
	c.mu.Unlock()
	c.timer.Reset(time.Until(deadline))
	if parent.Done() != nil {
		c.stop = context.AfterFunc(parent, c.onParentDone)
	}
	return c, c.release
}

func (c *attemptCtx) onTimeout() { c.expire(context.DeadlineExceeded) }

func (c *attemptCtx) onParentDone() { c.expire(c.parentCtx().Err()) }

func (c *attemptCtx) parentCtx() context.Context {
	c.mu.Lock()
	p := c.parent
	c.mu.Unlock()
	return p
}

func (c *attemptCtx) expire(err error) {
	c.mu.Lock()
	if !c.fired {
		c.fired = true
		c.err = err
		close(c.done)
	}
	c.mu.Unlock()
}

// release detaches the context. If neither the timer nor the parent
// watcher fired, the object (with its still-open done channel) is
// returned to the pool for the next attempt.
func (c *attemptCtx) release() {
	detached := true
	if c.stop != nil {
		// If stop reports false the parent-done callback already ran or
		// is running concurrently: the object must not be reused.
		detached = c.stop()
		c.stop = nil
	}
	stopped := c.timer.Stop()
	c.mu.Lock()
	reusable := detached && stopped && !c.fired
	if reusable {
		// Swap the parent out so the pool does not pin the request's
		// value chain; stale child references resolve against Background.
		c.parent = context.Background()
	}
	c.mu.Unlock()
	if reusable {
		attemptPool.Put(c)
	}
	// Otherwise the done channel is (or is about to be) closed; the
	// object is abandoned to the garbage collector.
}

// Deadline implements context.Context.
func (c *attemptCtx) Deadline() (time.Time, bool) {
	c.mu.Lock()
	d := c.deadline
	c.mu.Unlock()
	return d, true
}

// Done implements context.Context.
func (c *attemptCtx) Done() <-chan struct{} { return c.done }

// Err implements context.Context.
func (c *attemptCtx) Err() error {
	c.mu.Lock()
	fired, err, parent := c.fired, c.err, c.parent
	c.mu.Unlock()
	if fired {
		return err
	}
	return parent.Err()
}

// Value implements context.Context.
func (c *attemptCtx) Value(key any) any { return c.parentCtx().Value(key) }
