package resilience

import (
	"sync"
	"time"
)

// State is the position of a circuit breaker.
type State int32

const (
	// Closed admits every call; consecutive indictable failures are
	// counted toward the trip threshold.
	Closed State = iota
	// Open short-circuits every call until the open window elapses.
	Open
	// HalfOpen admits a bounded number of probe calls; one success
	// closes the breaker, one failure re-opens it.
	HalfOpen
)

// String returns the label used on /metrics and /api/stats.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a three-state circuit breaker with consecutive-failure
// tripping and bounded half-open probe admission. All methods are safe
// for concurrent use.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that trip the breaker
	openFor   time.Duration // how long Open rejects before probing
	probes    int           // concurrent probe admissions while HalfOpen

	state   State
	fails   int       // consecutive indictable failures while Closed
	until   time.Time // end of the current Open window
	probing int       // probes admitted and not yet reported

	opens     int64 // Closed/HalfOpen → Open transitions
	halfOpens int64 // Open → HalfOpen transitions
	closes    int64 // HalfOpen → Closed transitions

	now func() time.Time // clock hook for tests
}

func newBreaker(threshold int, openFor time.Duration, probes int) *breaker {
	return &breaker{
		threshold: threshold,
		openFor:   openFor,
		probes:    probes,
		now:       time.Now,
	}
}

// allow reports whether a call may proceed, admitting half-open probes
// once the open window has elapsed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Before(b.until) {
			return false
		}
		b.state = HalfOpen
		b.halfOpens++
		b.probing = 1
		return true
	default: // HalfOpen
		if b.probing >= b.probes {
			return false
		}
		b.probing++
		return true
	}
}

// success reports a call that completed without an indictable failure.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails = 0
	case HalfOpen:
		// One healthy probe is evidence enough: close and reset.
		b.state = Closed
		b.fails = 0
		b.probing = 0
		b.closes++
	}
	// A success landing while Open (a call admitted before the trip, or
	// a late hedge) is ignored: the open window expires on its own.
}

// failure reports an indictable failure (transport-level, 5xx/429, or
// attempt timeout — never an application error).
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	case HalfOpen:
		// The probe failed: straight back to Open for a full window.
		if b.probing > 0 {
			b.probing--
		}
		b.trip()
	}
}

// release returns an admitted half-open probe slot without a verdict —
// the call bailed out (context cancelled, rate-limit wait aborted)
// before producing evidence either way.
func (b *breaker) release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen && b.probing > 0 {
		b.probing--
	}
}

// trip moves to Open. Callers hold b.mu.
func (b *breaker) trip() {
	b.state = Open
	b.fails = 0
	b.until = b.now().Add(b.openFor)
	b.opens++
}

// snapshot returns the current state without transitioning it: a breaker
// whose open window has elapsed still reads Open until a call admits the
// first probe.
func (b *breaker) snapshot() (s State, opens, halfOpens, closes int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens, b.halfOpens, b.closes
}
