// Package resilience is the source-fault layer of QR2: a per-source
// policy wrapped around every web-database call.
//
// QR2 is a third-party service over web databases it does not control
// (Gunasekaran et al., ICDE 2018): sources hang, rate-limit, return 5xx
// and disappear mid-crawl. The wrapper produced by Source.Wrap gives
// each call a per-attempt deadline, retries transport-level and
// 5xx/429 failures with capped exponential backoff and jitter, guards
// the source with a three-state circuit breaker (closed → open →
// half-open with bounded probe admission), bounds concurrency with a
// semaphore and request rate with a token bucket, and optionally hedges
// slow attempts for tail latency.
//
// Retries are safe here because the hidden-database interface is a pure
// top-k search: every call is idempotent by construction. Only failures
// that indict the transport — net.Error, connection resets, HTTP 5xx
// and 429 (via the HTTPStatus interface), attempt-deadline timeouts —
// are retried and counted toward the breaker; an application-level
// error proves the source is alive and is returned unchanged, exactly
// as without the wrapper.
//
// When the breaker is open (or retries are exhausted) and the policy
// enables degraded serving, the wrapper answers with an empty
// hidden.Result carrying the Degraded marker instead of an error. The
// layers above — answer-cache pool, containment, crawl sets, dense
// index — keep serving everything they already hold without ever
// reaching the leaf, so the marker only surfaces on the residue a dead
// source would otherwise fail; the service tags such responses
// stale-ok. Degraded results must never be admitted into any durable
// layer (see hidden.Result.Degraded).
package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/hidden"
	"repro/internal/obs"
	"repro/internal/relation"
)

// ErrOpen is returned (or wrapped) when a source's circuit breaker
// short-circuits a call without attempting it.
var ErrOpen = errors.New("resilience: circuit open")

// Policy tunes one source's resilience. The zero value means sensible
// defaults (see each field); use a negative value to disable a knob
// whose zero value is a default.
type Policy struct {
	// AttemptTimeout bounds each individual attempt (the per-attempt
	// deadline, propagated via context). Default 10s; negative disables.
	AttemptTimeout time.Duration
	// MaxAttempts is the total number of tries per call, first attempt
	// included. Default 3 (two retries); values below 1 mean 1.
	MaxAttempts int
	// BackoffBase is the pre-jitter backoff before the first retry,
	// doubling per retry. Default 50ms.
	BackoffBase time.Duration
	// BackoffCap caps the exponential backoff. Default 2s.
	BackoffCap time.Duration
	// BreakerThreshold is the consecutive indictable failures that trip
	// the breaker. Default 5; negative disables the breaker.
	BreakerThreshold int
	// BreakerOpenFor is how long an open breaker rejects before
	// admitting half-open probes. Default 10s.
	BreakerOpenFor time.Duration
	// BreakerProbes is the number of concurrent half-open probe calls.
	// Default 1.
	BreakerProbes int
	// MaxConcurrent caps in-flight calls to the source (0 = unlimited).
	MaxConcurrent int
	// RatePerSec refills the per-source token bucket (0 = unlimited).
	RatePerSec float64
	// Burst is the token-bucket capacity. Default: RatePerSec rounded
	// up, at least 1.
	Burst int
	// HedgeAfter launches one duplicate attempt when the first has not
	// answered within this duration; the first answer wins. 0 disables.
	HedgeAfter time.Duration
	// DegradedServe answers with an empty Degraded-marked result instead
	// of an error when the breaker is open or retries are exhausted.
	DegradedServe bool
	// Seed seeds the jitter PRNG (0 picks a fixed default); tests use it
	// for reproducible backoff schedules.
	Seed uint64
}

func (p Policy) withDefaults() Policy {
	if p.AttemptTimeout == 0 {
		p.AttemptTimeout = 10 * time.Second
	}
	if p.MaxAttempts < 1 {
		if p.MaxAttempts == 0 {
			p.MaxAttempts = 3
		} else {
			p.MaxAttempts = 1
		}
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 50 * time.Millisecond
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 2 * time.Second
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 5
	}
	if p.BreakerOpenFor <= 0 {
		p.BreakerOpenFor = 10 * time.Second
	}
	if p.BreakerProbes < 1 {
		p.BreakerProbes = 1
	}
	if p.Burst < 1 {
		p.Burst = int(p.RatePerSec + 0.999)
		if p.Burst < 1 {
			p.Burst = 1
		}
	}
	if p.Seed == 0 {
		p.Seed = 0x9e3779b97f4a7c15
	}
	return p
}

// Source is the shared runtime state of one source's policy: breaker,
// limiter, semaphore and counters. One Source may back several wrapped
// databases (the raw leaf and, through it, the prober) so they indict
// and recover together.
type Source struct {
	pol Policy
	br  *breaker // nil when the breaker is disabled
	sem chan struct{}
	tb  *bucket
	rng atomic.Uint64

	attempts       atomic.Int64
	retries        atomic.Int64
	failures       atomic.Int64
	hedges         atomic.Int64
	hedgeWins      atomic.Int64
	shortCircuits  atomic.Int64
	degradedServes atomic.Int64
	rateWaits      atomic.Int64
}

// NewSource builds the runtime for one source from a policy.
func NewSource(pol Policy) *Source {
	pol = pol.withDefaults()
	s := &Source{pol: pol}
	if pol.BreakerThreshold > 0 {
		s.br = newBreaker(pol.BreakerThreshold, pol.BreakerOpenFor, pol.BreakerProbes)
	}
	if pol.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, pol.MaxConcurrent)
	}
	if pol.RatePerSec > 0 {
		s.tb = newBucket(pol.RatePerSec, float64(pol.Burst))
	}
	s.rng.Store(pol.Seed)
	return s
}

// State returns the breaker position (Closed when the breaker is
// disabled).
func (s *Source) State() State {
	if s.br == nil {
		return Closed
	}
	st, _, _, _ := s.br.snapshot()
	return st
}

// Stats is a point-in-time snapshot of one source's resilience
// counters, served on /api/stats and /metrics.
type Stats struct {
	State          string `json:"state"`
	Attempts       int64  `json:"attempts"`
	Retries        int64  `json:"retries"`
	Failures       int64  `json:"failures"`
	Hedges         int64  `json:"hedges"`
	HedgeWins      int64  `json:"hedge_wins"`
	ShortCircuits  int64  `json:"short_circuits"`
	DegradedServes int64  `json:"degraded_serves"`
	RateWaits      int64  `json:"rate_waits"`
	Opens          int64  `json:"breaker_opens"`
	HalfOpens      int64  `json:"breaker_half_opens"`
	Closes         int64  `json:"breaker_closes"`
}

// Stats snapshots the counters.
func (s *Source) Stats() Stats {
	st := Stats{
		State:          Closed.String(),
		Attempts:       s.attempts.Load(),
		Retries:        s.retries.Load(),
		Failures:       s.failures.Load(),
		Hedges:         s.hedges.Load(),
		HedgeWins:      s.hedgeWins.Load(),
		ShortCircuits:  s.shortCircuits.Load(),
		DegradedServes: s.degradedServes.Load(),
		RateWaits:      s.rateWaits.Load(),
	}
	if s.br != nil {
		state, opens, halfOpens, closes := s.br.snapshot()
		st.State = state.String()
		st.Opens, st.HalfOpens, st.Closes = opens, halfOpens, closes
	}
	return st
}

// Wrap decorates a hidden database with this source's policy. When the
// inner database counts queries (hidden.Counter) the wrapper forwards
// the capability.
func (s *Source) Wrap(db hidden.DB) hidden.DB {
	d := &DB{inner: db, s: s}
	if c, ok := db.(hidden.Counter); ok {
		return counterDB{d, c}
	}
	return d
}

// DB is a hidden.DB decorated with a Source's resilience policy.
type DB struct {
	inner hidden.DB
	s     *Source
}

type counterDB struct {
	*DB
	hidden.Counter
}

// Name implements hidden.DB.
func (d *DB) Name() string { return d.inner.Name() }

// Schema implements hidden.DB.
func (d *DB) Schema() *relation.Schema { return d.inner.Schema() }

// SystemK implements hidden.DB.
func (d *DB) SystemK() int { return d.inner.SystemK() }

// Search implements hidden.DB: breaker admission, then up to
// MaxAttempts tries under per-attempt deadlines with backoff between
// them, degrading to a fabricated empty answer when the policy allows.
func (d *DB) Search(ctx context.Context, p relation.Predicate) (hidden.Result, error) {
	s := d.s
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-ctx.Done():
			return hidden.Result{}, ctx.Err()
		}
	}
	if s.br != nil && !s.br.allow() {
		s.shortCircuits.Add(1)
		return s.degrade(ctx, fmt.Errorf("resilience: %s: %w", d.inner.Name(), ErrOpen))
	}
	// From here on the breaker may hold a half-open probe slot for this
	// call; every return path must report a verdict (success/failure) or
	// release the slot.
	var lastErr error
	for attempt := 0; attempt < s.pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			s.retries.Add(1)
			if err := sleep(ctx, s.jitter(s.backoff(attempt))); err != nil {
				s.release()
				return hidden.Result{}, err
			}
		}
		if s.tb != nil {
			if err := s.tb.wait(ctx, &s.rateWaits); err != nil {
				s.release()
				return hidden.Result{}, err
			}
		}
		s.attempts.Add(1)
		res, err := d.attempt(ctx, p)
		if err == nil {
			if s.br != nil {
				s.br.success()
			}
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The caller's own context expired or was cancelled: no
			// evidence against the source, no degraded substitute.
			s.release()
			return hidden.Result{}, err
		}
		if !Temporary(err) {
			// An application-level answer proves the transport works:
			// return it unchanged and clear the failure streak.
			if s.br != nil {
				s.br.success()
			}
			return hidden.Result{}, err
		}
		s.failures.Add(1)
		if s.br != nil {
			s.br.failure()
			if st, _, _, _ := s.br.snapshot(); st == Open {
				// Our failure (or a concurrent caller's) tripped the
				// breaker: stop spending retry budget on this source.
				break
			}
		}
	}
	return s.degrade(ctx, fmt.Errorf("resilience: %s: attempts exhausted: %w", d.inner.Name(), lastErr))
}

func (s *Source) release() {
	if s.br != nil {
		s.br.release()
	}
}

// attempt runs one try under the per-attempt deadline, hedging a
// duplicate when the policy asks for it.
func (d *DB) attempt(ctx context.Context, p relation.Predicate) (hidden.Result, error) {
	if d.s.pol.HedgeAfter > 0 {
		return d.hedgedAttempt(ctx, p)
	}
	if d.s.pol.AttemptTimeout > 0 {
		actx, release := newAttemptCtx(ctx, d.s.pol.AttemptTimeout)
		res, err := d.inner.Search(actx, p)
		release()
		return res, err
	}
	return d.inner.Search(ctx, p)
}

// hedgedAttempt races the attempt against one duplicate launched after
// HedgeAfter; the first answer wins.
func (d *DB) hedgedAttempt(ctx context.Context, p relation.Predicate) (hidden.Result, error) {
	run := func() (hidden.Result, error) {
		actx := ctx
		if d.s.pol.AttemptTimeout > 0 {
			var release func()
			actx, release = newAttemptCtx(ctx, d.s.pol.AttemptTimeout)
			defer release()
		}
		return d.inner.Search(actx, p)
	}
	type answer struct {
		res   hidden.Result
		err   error
		hedge bool
	}
	ch := make(chan answer, 2)
	launch := func(hedge bool) {
		go func() {
			res, err := run()
			ch <- answer{res, err, hedge}
		}()
	}
	launch(false)
	timer := time.NewTimer(d.s.pol.HedgeAfter)
	defer timer.Stop()
	outstanding, hedged := 1, false
	var firstErr error
	for {
		select {
		case <-ctx.Done():
			return hidden.Result{}, ctx.Err()
		case <-timer.C:
			if !hedged {
				hedged = true
				d.s.hedges.Add(1)
				launch(true)
				outstanding++
			}
		case a := <-ch:
			outstanding--
			if a.err == nil {
				if a.hedge {
					d.s.hedgeWins.Add(1)
				}
				return a.res, nil
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if outstanding == 0 {
				return hidden.Result{}, firstErr
			}
			// The other hedged attempt is still in flight; wait for it.
		}
	}
}

// degrade fabricates the empty stale-ok answer when the policy allows,
// or surfaces cause.
func (s *Source) degrade(ctx context.Context, cause error) (hidden.Result, error) {
	if !s.pol.DegradedServe || ctx.Err() != nil {
		return hidden.Result{}, cause
	}
	s.degradedServes.Add(1)
	tm := obs.FromContext(ctx).Start(obs.StageDegraded)
	tm.End(obs.OutcomeDegraded)
	return hidden.Result{Degraded: true}, nil
}

// backoff is the pre-jitter exponential delay before retry `attempt`
// (1-based), capped by the policy.
func (s *Source) backoff(attempt int) time.Duration {
	d := s.pol.BackoffBase << (attempt - 1)
	if d > s.pol.BackoffCap || d <= 0 {
		d = s.pol.BackoffCap
	}
	return d
}

// jitter maps a delay to a uniform value in [d/2, d] so concurrent
// retriers decorrelate instead of thundering in lockstep.
func (s *Source) jitter(d time.Duration) time.Duration {
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(s.rand63())%(half+1)
}

// rand63 is a lock-free xorshift64* step returning 63 random bits.
func (s *Source) rand63() int64 {
	for {
		old := s.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if s.rng.CompareAndSwap(old, x) {
			return int64((x * 0x2545f4914f6cdd1d) >> 1)
		}
	}
}

// sleep waits for d or until the context ends.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// bucket is a token-bucket rate limiter: rate tokens/second up to
// burst, one token per attempt, callers sleep for the shortfall.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	rate   float64
	burst  float64
}

func newBucket(rate, burst float64) *bucket {
	return &bucket{tokens: burst, last: time.Now(), rate: rate, burst: burst}
}

func (b *bucket) wait(ctx context.Context, waits *atomic.Int64) error {
	waited := false
	for {
		b.mu.Lock()
		now := time.Now()
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
		if b.tokens >= 1 {
			b.tokens--
			b.mu.Unlock()
			return nil
		}
		need := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
		b.mu.Unlock()
		if !waited {
			waited = true
			waits.Add(1)
		}
		if err := sleep(ctx, need); err != nil {
			return err
		}
	}
}

// HTTPStatus is implemented by errors that carry an HTTP status code
// (wdbhttp.StatusError); resilience classifies 5xx and 429 as
// indictable without importing the transport package.
type HTTPStatus interface {
	HTTPStatus() int
}

// Temporary reports whether an error indicts the transport — and is
// therefore worth a retry and a breaker count — rather than the
// application: network errors, connection resets/refusals, HTTP 5xx and
// 429, and attempt-deadline timeouts. Context cancellation is not
// temporary; neither is any plain application error.
func Temporary(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var hs HTTPStatus
	if errors.As(err, &hs) {
		c := hs.HTTPStatus()
		return c >= 500 || c == 429
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE)
}

// IsUnavailable reports whether an error means "the source is
// unreachable right now" — an open breaker or exhausted transport-level
// retries. The epoch prober uses it to pause (back off) instead of
// counting such rounds as probe errors.
func IsUnavailable(err error) bool {
	return errors.Is(err, ErrOpen) || Temporary(err)
}

// Retry is a lightweight retry/deadline policy for idempotent
// request-response calls that are not hidden-database searches (the
// cluster peer protocol). The zero value means a single attempt with no
// added deadline — existing behaviour.
type Retry struct {
	// MaxAttempts is the total number of tries (default 1).
	MaxAttempts int
	// AttemptTimeout bounds each attempt (0 = none beyond the caller's).
	AttemptTimeout time.Duration
	// BackoffBase doubles per retry (default 25ms).
	BackoffBase time.Duration
	// BackoffCap caps the backoff (default 250ms).
	BackoffCap time.Duration
	// RetryIf decides whether an error deserves another attempt; nil
	// means Temporary.
	RetryIf func(error) bool
}

// Do runs fn under the retry policy, passing each attempt its own
// deadline-bounded context.
func Do(ctx context.Context, r Retry, fn func(context.Context) error) error {
	attempts := r.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	retryIf := r.RetryIf
	if retryIf == nil {
		retryIf = Temporary
	}
	base, cap := r.BackoffBase, r.BackoffCap
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if cap <= 0 {
		cap = 250 * time.Millisecond
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			d := base << (i - 1)
			if d > cap || d <= 0 {
				d = cap
			}
			if serr := sleep(ctx, d); serr != nil {
				return err
			}
		}
		err = func() error {
			actx := ctx
			if r.AttemptTimeout > 0 {
				var cancel context.CancelFunc
				actx, cancel = context.WithTimeout(ctx, r.AttemptTimeout)
				defer cancel()
			}
			return fn(actx)
		}()
		if err == nil || ctx.Err() != nil || !retryIf(err) {
			return err
		}
	}
	return err
}
